"""Property-based solver correctness on random dense systems.

Hypothesis draws random well-conditioned complex systems; every Krylov
solver in the package must recover the direct solution.  This covers
the solver control flow (restarts, breakdown handling, tolerances)
independently of the lattice machinery.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.solvers import bicgstab, ca_gmres, cg, cgne, cgnr, gcr, gmres, mr, norm

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class DenseOperator:
    """A dense matrix with the package's operator interface."""

    def __init__(self, mat: np.ndarray):
        self.mat = mat
        self.ns = 1
        self.nc = mat.shape[0]

    def apply(self, v: np.ndarray) -> np.ndarray:
        return (self.mat @ v.reshape(-1)).reshape(v.shape)

    matvec = apply

    def gamma5_diag(self):
        return np.ones(1)


@st.composite
def dense_system(draw, hermitian_pd=False):
    n = draw(st.integers(4, 24))
    seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    if hermitian_pd:
        a = a @ a.conj().T + n * np.eye(n)
    else:
        # diagonally dominated: well away from singularity
        a = a + (2.0 * n) * np.eye(n)
    b = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    return DenseOperator(a), b


def exact(op: DenseOperator, b: np.ndarray) -> np.ndarray:
    return np.linalg.solve(op.mat, b)


class TestGeneralSolvers:
    @given(dense_system())
    @settings(**SETTINGS)
    def test_bicgstab_matches_direct(self, sys_):
        op, b = sys_
        res = bicgstab(op, b, tol=1e-10, maxiter=2000)
        assert res.converged
        np.testing.assert_allclose(res.x, exact(op, b), rtol=1e-6, atol=1e-8)

    @given(dense_system())
    @settings(**SETTINGS)
    def test_gcr_matches_direct(self, sys_):
        op, b = sys_
        res = gcr(op, b, tol=1e-10, maxiter=2000)
        assert res.converged
        np.testing.assert_allclose(res.x, exact(op, b), rtol=1e-6, atol=1e-8)

    @given(dense_system())
    @settings(**SETTINGS)
    def test_gmres_matches_direct(self, sys_):
        op, b = sys_
        res = gmres(op, b, tol=1e-10, maxiter=2000, restart=12)
        assert res.converged
        np.testing.assert_allclose(res.x, exact(op, b), rtol=1e-6, atol=1e-8)

    @given(dense_system())
    @settings(**SETTINGS)
    def test_ca_gmres_matches_direct(self, sys_):
        op, b = sys_
        res = ca_gmres(op, b, tol=1e-9, maxiter=3000, s=3)
        assert res.converged
        np.testing.assert_allclose(res.x, exact(op, b), rtol=1e-5, atol=1e-7)

    @given(dense_system())
    @settings(**SETTINGS)
    def test_mr_with_tolerance_converges(self, sys_):
        op, b = sys_
        res = mr(op, b, tol=1e-6, maxiter=50000)
        assert res.converged
        assert norm(b - op.apply(res.x)) / norm(b) < 1e-6


class TestHermitianSolvers:
    @given(dense_system(hermitian_pd=True))
    @settings(**SETTINGS)
    def test_cg_matches_direct(self, sys_):
        op, b = sys_
        res = cg(op, b, tol=1e-10, maxiter=2000)
        assert res.converged
        np.testing.assert_allclose(res.x, exact(op, b), rtol=1e-6, atol=1e-8)

    @given(dense_system())
    @settings(**SETTINGS)
    def test_cgnr_residual_small(self, sys_):
        # CGNR needs gamma5-hermiticity for the adjoint; our dense op's
        # trivial gamma5 makes M^dag = conj(M) only for symmetric M, so
        # restrict the check to the hermitian case
        op, b = sys_
        h = DenseOperator(0.5 * (op.mat + op.mat.conj().T) + 2 * op.mat.shape[0] * np.eye(op.mat.shape[0]))
        res = cgnr(h, b, tol=1e-9, maxiter=3000)
        assert norm(b - h.apply(res.x)) / norm(b) < 1e-6

    @given(dense_system())
    @settings(**SETTINGS)
    def test_cgne_residual_small(self, sys_):
        op, b = sys_
        h = DenseOperator(0.5 * (op.mat + op.mat.conj().T) + 2 * op.mat.shape[0] * np.eye(op.mat.shape[0]))
        res = cgne(h, b, tol=1e-9, maxiter=3000)
        assert norm(b - h.apply(res.x)) / norm(b) < 1e-6

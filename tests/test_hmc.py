"""Pure-gauge HMC: exactness properties of the Markov chain."""

import numpy as np
import pytest

from repro.gauge import average_plaquette
from repro.gauge.heatbath import quenched_ensemble
from repro.gauge.hmc import (
    gauge_force,
    hmc_ensemble,
    hmc_trajectory,
    kinetic_energy,
    leapfrog,
    sample_momenta,
    wilson_action,
)
from repro.lattice import Lattice


@pytest.fixture(scope="module")
def lat():
    return Lattice((4, 4, 4, 4))


@pytest.fixture(scope="module")
def thermal(lat):
    return quenched_ensemble(lat, 5.7, np.random.default_rng(0), 10)


class TestIngredients:
    def test_momenta_hermitian_traceless(self, lat):
        p = sample_momenta(lat, np.random.default_rng(1))
        assert np.abs(p - np.conj(np.swapaxes(p, -1, -2))).max() < 1e-14
        assert np.abs(np.einsum("dvii->dv", p)).max() < 1e-14

    def test_kinetic_energy_positive(self, lat):
        p = sample_momenta(lat, np.random.default_rng(2))
        assert kinetic_energy(p) > 0

    def test_kinetic_energy_equipartition(self, lat):
        # E[tr P^2] per link = 8 generators * 2 * Var(c) = 4
        p = sample_momenta(lat, np.random.default_rng(3))
        per_link = kinetic_energy(p) / (4 * lat.volume)
        assert per_link == pytest.approx(4.0, rel=0.1)

    def test_action_decreases_with_smoothness(self, lat, thermal):
        from repro.gauge import free_field, hot_start

        s_cold = wilson_action(free_field(lat), 5.7)
        s_thermal = wilson_action(thermal, 5.7)
        s_hot = wilson_action(hot_start(lat, np.random.default_rng(4)), 5.7)
        assert s_cold < s_thermal < s_hot

    def test_force_hermitian_traceless(self, thermal):
        f = gauge_force(thermal, 5.7)
        assert np.abs(f - np.conj(np.swapaxes(f, -1, -2))).max() < 1e-12
        assert np.abs(np.einsum("dvii->dv", f)).max() < 1e-12

    def test_force_vanishes_on_free_field(self, lat):
        from repro.gauge import free_field

        f = gauge_force(free_field(lat), 5.7)
        assert np.abs(f).max() < 1e-13


class TestLeapfrog:
    def test_energy_conservation_scales_as_dt2(self, lat, thermal):
        dhs = []
        for dt in (0.05, 0.025):
            p0 = sample_momenta(lat, np.random.default_rng(5))
            h0 = kinetic_energy(p0) + wilson_action(thermal, 5.7)
            u1, p1 = leapfrog(thermal, p0, 5.7, int(round(0.5 / dt)), dt)
            h1 = kinetic_energy(p1) + wilson_action(u1, 5.7)
            dhs.append(abs(h1 - h0))
        # halving dt must cut |dH| by ~4 (allow 2.5-8)
        assert 2.5 < dhs[0] / dhs[1] < 8.0

    def test_exact_reversibility(self, lat, thermal):
        p0 = sample_momenta(lat, np.random.default_rng(6))
        u1, p1 = leapfrog(thermal, p0, 5.7, 10, 0.05)
        u2, p2 = leapfrog(u1, -p1, 5.7, 10, 0.05)
        assert np.abs(u2.data - thermal.data).max() < 1e-12
        assert np.abs(p2 + p0).max() < 1e-12

    def test_links_stay_su3(self, lat, thermal):
        p0 = sample_momenta(lat, np.random.default_rng(7))
        u1, _ = leapfrog(thermal, p0, 5.7, 10, 0.05)
        assert u1.unitarity_violation() < 1e-12


class TestMarkovChain:
    def test_high_acceptance_at_small_dt(self, lat, thermal):
        accepted = 0
        u = thermal
        rng = np.random.default_rng(8)
        for _ in range(6):
            res = hmc_trajectory(u, 5.7, rng, n_steps=10, dt=0.04)
            u = res.gauge
            accepted += res.accepted
        assert accepted >= 4

    def test_equilibrium_plaquette_matches_heatbath(self, lat, thermal):
        # two exact algorithms must agree on <plaquette>
        u, hist = hmc_ensemble(
            lat, 5.7, np.random.default_rng(9), n_trajectories=10,
            n_steps=10, dt=0.05, start=thermal,
        )
        hmc_plaq = np.mean([h.plaquette for h in hist[3:]])
        hb_plaq = average_plaquette(
            quenched_ensemble(lat, 5.7, np.random.default_rng(10), 20)
        )
        assert hmc_plaq == pytest.approx(hb_plaq, abs=0.06)

    def test_rejection_keeps_old_configuration(self, lat, thermal):
        # a huge step size guarantees rejection
        rng = np.random.default_rng(11)
        res = hmc_trajectory(thermal, 5.7, rng, n_steps=3, dt=1.0)
        if not res.accepted:
            assert np.array_equal(res.gauge.data, thermal.data)
        assert res.delta_h != 0.0

"""Workload definitions: paper datasets, scaled stand-ins, presets."""

import numpy as np
import pytest

from repro.lattice import Blocking
from repro.mg import MGParams
from repro.precision import Precision
from repro.workloads import (
    PAPER_DATASETS,
    PAPER_STRATEGIES,
    SCALED_DATASETS,
    SCALED_FOR_PAPER,
    TABLE3,
    mg_params_for,
    strategy_nulls,
    table3_rows,
    two_level_params,
)


class TestPaperDatasets:
    def test_three_datasets(self):
        assert set(PAPER_DATASETS) == {"Aniso40", "Iso48", "Iso64"}

    def test_table1_values(self):
        a = PAPER_DATASETS["Aniso40"]
        assert a.dims == (40, 40, 40, 256)
        assert a.m_pi_mev == 230
        i = PAPER_DATASETS["Iso64"]
        assert i.target_residuum == 1e-7
        assert i.node_counts == (64, 128, 256, 512)

    def test_blockings_tile_dims(self):
        for d in PAPER_DATASETS.values():
            for nodes, blocks in d.blockings.items():
                dims = d.dims
                for block in blocks:
                    assert all(x % b == 0 for x, b in zip(dims, block)), (
                        d.label,
                        nodes,
                        block,
                    )
                    dims = tuple(x // b for x, b in zip(dims, block))


class TestScaledDatasets:
    def test_one_per_paper_dataset(self):
        assert set(SCALED_FOR_PAPER) == set(PAPER_DATASETS)

    def test_blockings_valid(self):
        for s in SCALED_DATASETS.values():
            lat = s.lattice()
            for block in s.blockings:
                b = Blocking(lat, block)
                lat = b.coarse

    def test_gauge_deterministic(self):
        s = SCALED_FOR_PAPER["Aniso40"]
        a = s.gauge()
        b = s.gauge()
        assert np.array_equal(a.data, b.data)

    def test_mass_is_near_critical(self):
        for s in SCALED_DATASETS.values():
            assert s.delta_m > 0
            assert s.mass == pytest.approx(s.m_crit + s.delta_m)

    def test_scaled_null_counts(self):
        s = SCALED_FOR_PAPER["Iso48"]
        assert s.scaled_null(24) == 6
        assert s.scaled_null(32) == 8

    def test_operator_nonsingular_at_working_mass(self):
        # delta_m above the calibrated critical point: a solve must work
        from repro.dirac import WilsonCloverOperator
        from repro.solvers import bicgstab

        s = SCALED_FOR_PAPER["Aniso40"]
        op = WilsonCloverOperator(s.gauge(), **s.operator_kwargs())
        rng = np.random.default_rng(1)
        shape = (s.lattice().volume, 4, 3)
        b = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        res = bicgstab(op, b, tol=1e-6, maxiter=20000)
        assert res.converged


class TestPresets:
    def test_strategy_parse(self):
        assert strategy_nulls("24/32") == (24, 32)
        with pytest.raises(ValueError):
            strategy_nulls("24")

    def test_paper_strategies(self):
        assert PAPER_STRATEGIES == ("24/24", "24/32", "32/32")

    def test_three_level_params(self):
        s = SCALED_FOR_PAPER["Iso64"]
        p = mg_params_for(s, "24/32")
        assert isinstance(p, MGParams)
        assert p.n_levels == 3
        assert p.levels[0].n_null == 6
        assert p.levels[1].n_null == 8
        assert p.outer_tol == s.target_residuum
        assert p.extra["paper_strategy"] == "24/32"

    def test_mixed_precision_flag(self):
        s = SCALED_FOR_PAPER["Iso64"]
        p = mg_params_for(s, "24/24", mixed_precision=True)
        assert p.smoother_precision is Precision.HALF
        assert p.coarse_precision is Precision.SINGLE

    def test_two_level_params(self):
        s = SCALED_FOR_PAPER["Aniso40"]
        p = two_level_params(s, "32/32")
        assert p.n_levels == 2
        assert p.levels[0].n_null == 8


class TestPaperReference:
    def test_table3_row_count(self):
        assert len(TABLE3) == 31

    def test_filtering(self):
        rows = table3_rows("Iso64", 128)
        assert len(rows) == 4
        assert {r.solver for r in rows} == {"BiCGStab", "24/24", "24/32", "32/32"}

    def test_speedups_in_paper_band(self):
        for r in TABLE3:
            if r.speedup is not None:
                assert 4.5 <= r.speedup <= 11

    def test_mg_iterations_flat(self):
        mg_iters = [r.iterations for r in TABLE3 if r.solver != "BiCGStab"]
        assert min(mg_iters) >= 13 and max(mg_iters) <= 18

    def test_bicgstab_iterations_thousands(self):
        bi = [r.iterations for r in TABLE3 if r.solver == "BiCGStab"]
        assert min(bi) > 1500

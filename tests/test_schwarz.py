"""Schwarz (domain-decomposed) smoothing."""

import numpy as np
import pytest

from repro.lattice import Partition
from repro.mg import DomainDecomposedOperator, SchwarzMRSmoother
from repro.solvers import gcr, norm
from tests.conftest import random_spinor


@pytest.fixture(scope="module")
def dd_op(wilson448, lat448):
    part = Partition(lat448, (1, 1, 2, 2))
    return DomainDecomposedOperator.from_partition(wilson448, part)


class TestDomainDecomposedOperator:
    def test_diag_unchanged(self, dd_op, wilson448, lat448):
        v = random_spinor(lat448, seed=500)
        np.testing.assert_array_equal(dd_op.apply_diag(v), wilson448.apply_diag(v))

    def test_cuts_exactly_the_crossing_terms(self, wilson448, lat448):
        # difference between full and cut operator must live only on
        # domain-boundary sites (partition only t so interior sites exist)
        part = Partition(lat448, (1, 1, 1, 2))
        dd_op = DomainDecomposedOperator.from_partition(wilson448, part)
        v = random_spinor(lat448, seed=501)
        diff = np.abs(wilson448.apply(v) - dd_op.apply(v)).sum(axis=(1, 2))
        domain = dd_op.domain_of_site
        boundary = np.zeros(lat448.volume, dtype=bool)
        for mu in range(4):
            boundary |= domain[lat448.fwd[mu]] != domain
            boundary |= domain[lat448.bwd[mu]] != domain
        assert np.abs(diff[~boundary]).max() < 1e-13
        assert diff[boundary].max() > 1e-8

    def test_block_diagonal_over_domains(self, dd_op, lat448):
        # input supported on one domain yields output on that domain only
        v = random_spinor(lat448, seed=502)
        mask = dd_op.domain_of_site == 0
        v[~mask] = 0
        out = dd_op.apply(v)
        assert np.abs(out[~mask]).max() < 1e-13

    def test_cut_fraction(self, dd_op):
        # partition (1,1,2,2) of (4,4,4,8): local z extent 2 cuts one
        # z-hop per site; local t extent 4 cuts hops on half the sites
        assert dd_op.cut_fraction() == pytest.approx(1.5 / 8)

    def test_trivial_partition_cuts_nothing(self, wilson448, lat448):
        part = Partition(lat448, (1, 1, 1, 1))
        dd = DomainDecomposedOperator.from_partition(wilson448, part)
        v = random_spinor(lat448, seed=503)
        np.testing.assert_allclose(dd.apply(v), wilson448.apply(v), atol=1e-13)

    def test_bad_domain_map_rejected(self, wilson448):
        with pytest.raises(ValueError):
            DomainDecomposedOperator(wilson448, np.zeros(7, dtype=int))

    def test_mismatched_partition_rejected(self, wilson448):
        from repro.lattice import Lattice

        with pytest.raises(ValueError):
            DomainDecomposedOperator.from_partition(
                wilson448, Partition(Lattice((4, 4, 4, 4)), (1, 1, 1, 2))
            )


class TestSchwarzSmoother:
    def test_reduces_residual(self, wilson448, lat448):
        part = Partition(lat448, (1, 1, 2, 2))
        smoother = SchwarzMRSmoother(wilson448, part, steps=4)
        r = random_spinor(lat448, seed=504)
        z = smoother.apply(r)
        assert norm(r - wilson448.apply(z)) < norm(r)

    def test_accelerates_gcr(self, wilson448, lat448):
        part = Partition(lat448, (1, 1, 2, 2))
        smoother = SchwarzMRSmoother(wilson448, part, steps=4)
        b = random_spinor(lat448, seed=505)
        plain = gcr(wilson448, b, tol=1e-8, maxiter=3000)
        pre = gcr(wilson448, b, tol=1e-8, maxiter=3000, preconditioner=smoother)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_weaker_than_global_smoother(self, wilson448, lat448):
        # cutting couplings must not make the smoother stronger
        from repro.solvers import MRSmoother

        part = Partition(lat448, (2, 2, 2, 2))
        schwarz = SchwarzMRSmoother(wilson448, part, steps=4)
        global_ = MRSmoother(wilson448, steps=4)
        r = random_spinor(lat448, seed=506)
        res_schwarz = norm(r - wilson448.apply(schwarz.apply(r)))
        res_global = norm(r - wilson448.apply(global_.apply(r)))
        assert res_global <= res_schwarz * 1.05

"""Cross-module property-based tests: invariants over random problems.

Hypothesis draws random (small) lattice geometries, gauge roughness,
masses and blockings; the structural invariants — gamma5-hermiticity,
Schur-complement exactness, Galerkin identity, transfer adjointness,
partitioned-operator equality — must hold for every combination.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coarse import coarsen_operator
from repro.comm import PartitionedOperator
from repro.dirac import SchurOperator, WilsonCloverOperator
from repro.gauge import disordered_field
from repro.lattice import Blocking, Lattice, Partition
from repro.transfer import Transfer

SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def wilson_problem(draw):
    dims = (
        draw(st.sampled_from([2, 4])),
        draw(st.sampled_from([2, 4])),
        draw(st.sampled_from([2, 4])),
        draw(st.sampled_from([2, 4, 8])),
    )
    disorder = draw(st.floats(0.0, 0.8))
    mass = draw(st.floats(-0.8, 0.8))
    c_sw = draw(st.sampled_from([0.0, 1.0]))
    xi = draw(st.sampled_from([1.0, 2.0]))
    seed = draw(st.integers(0, 10**6))
    lat = Lattice(dims)
    u = disordered_field(lat, np.random.default_rng(seed), disorder)
    op = WilsonCloverOperator(u, mass=mass, c_sw=c_sw, anisotropy=xi)
    rng = np.random.default_rng(seed + 1)
    shape = (lat.volume, 4, 3)
    v = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    w = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return op, v, w


class TestOperatorProperties:
    @given(wilson_problem())
    @settings(**SETTINGS)
    def test_gamma5_hermiticity(self, problem):
        op, v, w = problem
        g5 = op.gamma5_diag()[None, :, None]
        lhs = np.vdot(w.ravel(), (g5 * op.apply(g5 * v)).ravel())
        rhs = np.conj(np.vdot(v.ravel(), op.apply(w).ravel()))
        assert abs(lhs - rhs) <= 1e-8 * max(abs(lhs), 1.0)

    @given(wilson_problem())
    @settings(**SETTINGS)
    def test_linearity(self, problem):
        op, v, w = problem
        lhs = op.apply(1.5 * v - 2j * w)
        rhs = 1.5 * op.apply(v) - 2j * op.apply(w)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    @given(wilson_problem())
    @settings(**SETTINGS)
    def test_decomposition_consistency(self, problem):
        op, v, _ = problem
        np.testing.assert_allclose(
            op.apply(v), op.apply_diag(v) + op.apply_hopping(v), atol=1e-10
        )

    @given(wilson_problem())
    @settings(**SETTINGS)
    def test_schur_gamma5_hermiticity(self, problem):
        op, v, w = problem
        schur = SchurOperator(op, 0)
        hv = schur.half_volume
        vh, wh = v[:hv], w[:hv]
        g5 = op.gamma5_diag()[None, :, None]
        lhs = np.vdot(wh.ravel(), (g5 * schur.apply(g5 * vh)).ravel())
        rhs = np.conj(np.vdot(vh.ravel(), schur.apply(wh).ravel()))
        assert abs(lhs - rhs) <= 1e-8 * max(abs(lhs), 1.0)


class TestTransferProperties:
    @given(wilson_problem(), st.integers(2, 4))
    @settings(**SETTINGS)
    def test_galerkin_identity(self, problem, n_null):
        op, _, _ = problem
        lat = op.lattice
        block = tuple(max(1, d // 2) for d in lat.dims)
        try:
            blocking = Blocking(lat, block)
        except ValueError:
            return  # geometry not blockable; nothing to check
        rng = np.random.default_rng(3)
        shape = (lat.volume, 4, 3)
        nulls = [
            rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            for _ in range(n_null)
        ]
        t = Transfer(blocking, nulls)
        mc = coarsen_operator(op, t)
        xc = rng.standard_normal((mc.lattice.volume, 2, n_null)) + 1j * rng.standard_normal(
            (mc.lattice.volume, 2, n_null)
        )
        lhs = mc.apply(xc)
        rhs = t.restrict(op.apply(t.prolong(xc)))
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    @given(wilson_problem(), st.integers(2, 3))
    @settings(**SETTINGS)
    def test_transfer_adjointness(self, problem, n_null):
        op, v, _ = problem
        lat = op.lattice
        block = tuple(max(1, d // 2) for d in lat.dims)
        try:
            blocking = Blocking(lat, block)
        except ValueError:
            return
        rng = np.random.default_rng(4)
        shape = (lat.volume, 4, 3)
        nulls = [
            rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            for _ in range(n_null)
        ]
        t = Transfer(blocking, nulls)
        xc = rng.standard_normal((t.coarse_lattice.volume, 2, n_null)) + 1j * rng.standard_normal(
            (t.coarse_lattice.volume, 2, n_null)
        )
        lhs = np.vdot(t.restrict(v).ravel(), xc.ravel())
        rhs = np.vdot(v.ravel(), t.prolong(xc).ravel())
        assert abs(lhs - rhs) <= 1e-8 * max(abs(lhs), 1.0)


class TestDecompositionProperties:
    @given(wilson_problem(), st.integers(0, 3))
    @settings(**SETTINGS)
    def test_partitioned_equals_global(self, problem, part_dir):
        op, v, _ = problem
        lat = op.lattice
        grid = [1, 1, 1, 1]
        if lat.dims[part_dir] >= 4:
            grid[part_dir] = 2
        pop = PartitionedOperator(op, Partition(lat, tuple(grid)))
        np.testing.assert_array_equal(pop.apply(v), op.apply(v))

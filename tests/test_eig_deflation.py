"""Lanczos eigensolver and deflated CG."""

import numpy as np
import pytest

from repro.dirac import NormalOperator
from repro.solvers import cg, condition_estimate, deflated_cg, lanczos_lowest, norm
from tests.conftest import random_spinor


@pytest.fixture(scope="module")
def normal_op(wilson44):
    return NormalOperator(wilson44)


@pytest.fixture(scope="module")
def low_modes(normal_op, lat44):
    return lanczos_lowest(
        normal_op,
        (lat44.volume, 4, 3),
        n_eigs=6,
        rng=np.random.default_rng(0),
        max_steps=250,
    )


class TestLanczos:
    def test_eigenpairs_satisfy_equation(self, normal_op, low_modes):
        # the clustered spectrum converges from the bottom: the lowest
        # pairs are tight, the higher ones looser
        evals, evecs = low_modes
        for i, (lam, vec) in enumerate(zip(evals, evecs)):
            resid = norm(normal_op.apply(vec) - lam * vec) / norm(vec)
            assert resid < (5e-4 if i < 3 else 5e-2), i

    def test_eigenvalues_sorted_positive(self, low_modes):
        evals, _ = low_modes
        assert np.all(evals > 0)
        assert np.all(np.diff(evals) >= -1e-12)

    def test_vectors_near_orthonormal(self, low_modes):
        _, evecs = low_modes
        v0 = evecs[0].ravel()
        v1 = evecs[1].ravel()
        assert abs(np.vdot(v0, v1)) < 1e-3
        assert np.linalg.norm(v0) == pytest.approx(1.0, abs=1e-6)

    def test_bad_count_rejected(self, normal_op, lat44):
        with pytest.raises(ValueError):
            lanczos_lowest(normal_op, (lat44.volume, 4, 3), 0, np.random.default_rng(1))


class TestDeflatedCG:
    def test_converges_to_same_solution(self, normal_op, low_modes, lat44):
        evals, evecs = low_modes
        b = random_spinor(lat44, seed=600)
        plain = cg(normal_op, b, tol=1e-9, maxiter=4000)
        defl = deflated_cg(normal_op, b, evals, evecs, tol=1e-9, maxiter=4000)
        assert defl.final_residual < 1e-8
        assert norm(plain.x - defl.x) / norm(plain.x) < 1e-6

    def test_deflation_reduces_iterations(self, normal_op, low_modes, lat44):
        # removing the low modes improves the effective condition number
        evals, evecs = low_modes
        b = random_spinor(lat44, seed=601)
        plain = cg(normal_op, b, tol=1e-8, maxiter=4000)
        defl = deflated_cg(normal_op, b, evals, evecs, tol=1e-8, maxiter=4000)
        assert defl.iterations < plain.iterations

    def test_more_modes_help_more(self, normal_op, low_modes, lat44):
        evals, evecs = low_modes
        b = random_spinor(lat44, seed=602)
        few = deflated_cg(normal_op, b, evals[:2], evecs[:2], tol=1e-8, maxiter=4000)
        many = deflated_cg(normal_op, b, evals, evecs, tol=1e-8, maxiter=4000)
        assert many.iterations <= few.iterations

    def test_mode_count_recorded(self, normal_op, low_modes, lat44):
        evals, evecs = low_modes
        b = random_spinor(lat44, seed=603)
        res = deflated_cg(normal_op, b, evals[:3], evecs[:3], tol=1e-6, maxiter=4000)
        assert res.extra["deflated_modes"] == 3


class TestConditionEstimate:
    def test_reasonable_estimate(self, normal_op, lat44):
        est = condition_estimate(
            normal_op, (lat44.volume, 4, 3), np.random.default_rng(2), steps=120
        )
        assert est > 1.0

    def test_mass_controls_conditioning(self, gauge44, lat44):
        # paper Section 3.3: "The quark mass controls the condition
        # number of the matrix"
        from repro.dirac import WilsonCloverOperator

        rng = np.random.default_rng(3)
        conds = []
        for mass in (0.5, -0.5):
            op = NormalOperator(WilsonCloverOperator(gauge44, mass=mass))
            conds.append(
                condition_estimate(op, (lat44.volume, 4, 3), rng, steps=100)
            )
        assert conds[1] > conds[0]

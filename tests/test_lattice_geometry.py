"""Lattice geometry: indexing, neighbours, parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice import NDIM, Lattice

DIM_CHOICES = [2, 4, 6, 8]


@st.composite
def lattice_dims(draw):
    return tuple(draw(st.sampled_from(DIM_CHOICES)) for _ in range(NDIM))


class TestConstruction:
    def test_volume(self):
        assert Lattice((4, 4, 4, 8)).volume == 512

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            Lattice((4, 4, 4))

    def test_rejects_odd_extent(self):
        with pytest.raises(ValueError):
            Lattice((4, 3, 4, 4))

    def test_rejects_tiny_extent(self):
        with pytest.raises(ValueError):
            Lattice((4, 4, 4, 0))

    def test_equality_and_hash(self):
        assert Lattice((4, 4, 4, 8)) == Lattice((4, 4, 4, 8))
        assert Lattice((4, 4, 4, 8)) != Lattice((8, 4, 4, 4))
        assert hash(Lattice((2, 2, 2, 2))) == hash(Lattice((2, 2, 2, 2)))

    def test_repr(self):
        assert "4x4x4x8" in repr(Lattice((4, 4, 4, 8)))


class TestIndexing:
    @given(lattice_dims())
    @settings(max_examples=20, deadline=None)
    def test_coords_index_roundtrip(self, dims):
        lat = Lattice(dims)
        idx = np.arange(lat.volume)
        assert np.array_equal(lat.index(lat.coords(idx)), idx)

    def test_x_fastest_convention(self):
        # paper Listing 2: idx = x + X*(y + Y*(z + Z*t))
        lat = Lattice((4, 6, 8, 2))
        assert np.array_equal(lat.coords(1), [1, 0, 0, 0])
        assert np.array_equal(lat.coords(4), [0, 1, 0, 0])
        assert np.array_equal(lat.coords(4 * 6), [0, 0, 1, 0])
        assert np.array_equal(lat.coords(4 * 6 * 8), [0, 0, 0, 1])

    def test_index_wraps_coordinates(self):
        lat = Lattice((4, 4, 4, 4))
        assert lat.index(np.array([5, 0, 0, 0])) == lat.index(np.array([1, 0, 0, 0]))
        assert lat.index(np.array([-1, 0, 0, 0])) == lat.index(np.array([3, 0, 0, 0]))

    def test_site_coords_shape(self, lat448):
        assert lat448.site_coords.shape == (512, 4)


class TestNeighbors:
    @given(lattice_dims())
    @settings(max_examples=15, deadline=None)
    def test_fwd_bwd_inverse(self, dims):
        lat = Lattice(dims)
        for mu in range(NDIM):
            assert np.array_equal(lat.bwd[mu][lat.fwd[mu]], np.arange(lat.volume))
            assert np.array_equal(lat.fwd[mu][lat.bwd[mu]], np.arange(lat.volume))

    def test_fwd_is_permutation(self, lat448):
        for mu in range(NDIM):
            assert np.array_equal(np.sort(lat448.fwd[mu]), np.arange(lat448.volume))

    def test_neighbor_moves_one_step(self, lat448):
        for mu in range(NDIM):
            delta = (
                lat448.site_coords[lat448.fwd[mu]] - lat448.site_coords
            ) % np.asarray(lat448.dims)
            expect = np.zeros(NDIM, dtype=int)
            expect[mu] = 1
            assert np.array_equal(delta, np.tile(expect, (lat448.volume, 1)))

    def test_crossing_masks_count(self, lat448):
        for mu in range(NDIM):
            face = lat448.volume // lat448.dims[mu]
            assert lat448.crosses_fwd[mu].sum() == face
            assert lat448.crosses_bwd[mu].sum() == face

    def test_crossing_iff_wraps(self, lat44):
        for mu in range(NDIM):
            wrapped = lat44.site_coords[lat44.fwd[mu], mu] < lat44.site_coords[:, mu]
            assert np.array_equal(wrapped, lat44.crosses_fwd[mu])


class TestParity:
    def test_half_volume_split(self, lat448):
        assert len(lat448.even_sites) == len(lat448.odd_sites) == lat448.half_volume

    def test_neighbors_flip_parity(self, lat448):
        for mu in range(NDIM):
            assert np.all(lat448.parity[lat448.fwd[mu]] != lat448.parity)
            assert np.all(lat448.parity[lat448.bwd[mu]] != lat448.parity)

    def test_origin_is_even(self, lat44):
        assert lat44.parity[0] == 0

    def test_sites_of_parity(self, lat44):
        assert np.array_equal(lat44.sites_of_parity(0), lat44.even_sites)
        assert np.array_equal(lat44.sites_of_parity(1), lat44.odd_sites)

    def test_parity_from_coords(self, lat448):
        expect = lat448.site_coords.sum(axis=1) % 2
        assert np.array_equal(lat448.parity, expect)

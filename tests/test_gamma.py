"""Gamma-matrix algebra in the DeGrand-Rossi basis."""

import numpy as np
import pytest

from repro.dirac import chirality_slices, gamma5, gamma_matrices, projectors, sigma_munu
from repro.dirac.gamma import chirality_slices_for
from repro.lattice import NDIM

EYE = np.eye(4)


class TestCliffordAlgebra:
    def test_anticommutators(self):
        g = gamma_matrices()
        for a in range(NDIM):
            for b in range(NDIM):
                ac = g[a] @ g[b] + g[b] @ g[a]
                np.testing.assert_allclose(ac, 2 * EYE * (a == b), atol=1e-15)

    def test_hermitian(self):
        g = gamma_matrices()
        for mu in range(NDIM):
            np.testing.assert_allclose(g[mu], g[mu].conj().T, atol=1e-15)

    def test_square_is_identity(self):
        g = gamma_matrices()
        for mu in range(NDIM):
            np.testing.assert_allclose(g[mu] @ g[mu], EYE, atol=1e-15)


class TestGamma5:
    def test_diagonal_chiral(self):
        np.testing.assert_allclose(gamma5(), np.diag([1, 1, -1, -1]), atol=1e-14)

    def test_is_product_of_gammas(self):
        g = gamma_matrices()
        np.testing.assert_allclose(
            gamma5(), g[0] @ g[1] @ g[2] @ g[3], atol=1e-14
        )

    def test_anticommutes_with_gammas(self):
        g = gamma_matrices()
        g5 = gamma5()
        for mu in range(NDIM):
            np.testing.assert_allclose(g5 @ g[mu] + g[mu] @ g5, 0 * EYE, atol=1e-14)


class TestProjectors:
    def test_sum_is_two(self):
        minus, plus = projectors()
        for mu in range(NDIM):
            np.testing.assert_allclose(minus[mu] + plus[mu], 2 * EYE, atol=1e-15)

    def test_half_is_idempotent(self):
        minus, plus = projectors()
        for p in list(minus) + list(plus):
            half = p / 2
            np.testing.assert_allclose(half @ half, half, atol=1e-14)

    def test_rank_two(self):
        minus, plus = projectors()
        for p in list(minus) + list(plus):
            assert np.linalg.matrix_rank(p) == 2

    def test_gamma5_swaps_projectors(self):
        minus, plus = projectors()
        g5 = gamma5()
        for mu in range(NDIM):
            np.testing.assert_allclose(g5 @ minus[mu] @ g5, plus[mu], atol=1e-14)


class TestSigma:
    def test_hermitian(self):
        sig = sigma_munu()
        for mu in range(NDIM):
            for nu in range(NDIM):
                np.testing.assert_allclose(
                    sig[mu, nu], sig[mu, nu].conj().T, atol=1e-14
                )

    def test_antisymmetric_in_indices(self):
        sig = sigma_munu()
        for mu in range(NDIM):
            for nu in range(NDIM):
                np.testing.assert_allclose(sig[mu, nu], -sig[nu, mu], atol=1e-14)

    def test_commutes_with_gamma5(self):
        sig = sigma_munu()
        g5 = gamma5()
        for mu in range(NDIM):
            for nu in range(NDIM):
                comm = g5 @ sig[mu, nu] - sig[mu, nu] @ g5
                np.testing.assert_allclose(comm, 0 * EYE, atol=1e-14)

    def test_chirality_block_diagonal(self):
        sig = sigma_munu()
        up, down = chirality_slices()
        for mu in range(NDIM):
            for nu in range(NDIM):
                assert np.abs(sig[mu, nu][up, down]).max() < 1e-14
                assert np.abs(sig[mu, nu][down, up]).max() < 1e-14


class TestChiralitySlices:
    def test_fine(self):
        up, down = chirality_slices()
        assert (up.start, up.stop) == (0, 2)
        assert (down.start, down.stop) == (2, 4)

    def test_coarse(self):
        up, down = chirality_slices_for(2)
        assert (up.start, up.stop) == (0, 1)
        assert (down.start, down.stop) == (1, 2)

    def test_odd_rejected(self):
        with pytest.raises(ValueError):
            chirality_slices_for(3)

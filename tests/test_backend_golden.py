"""Backend-parametrized golden regression (``pytest -m backend``).

The committed golden record freezes the canonical Aniso40-scaled
solve's convergence signature under the NumPy baseline.  Here the same
hierarchy — rebuilt from the baseline's exported null vectors, so the
setup is identical by construction — is solved again under every
candidate backend, and the *exact* iteration counts must reproduce:
backends are alternative layouts of the same arithmetic, so even the
comparator's small slack is not granted for the outer count.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.backend import available_backends
from repro.mg import MultigridSolver
from repro.verify.golden import compare_golden, golden_record, load_golden

pytestmark = pytest.mark.backend

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "aniso40-scaled.json"
TOL = 5e-6

CANDIDATES = tuple(n for n in available_backends() if n != "numpy")


@pytest.fixture(scope="module")
def backend_solves(aniso40_solve):
    """The canonical solve re-run under every candidate backend.

    The hierarchy is rebuilt from the baseline's exported null vectors
    (no relaxation re-run), so every backend solves the literally
    identical preconditioned system.
    """
    import dataclasses

    from repro.dirac import WilsonCloverOperator
    from repro.fields import SpinorField

    ds, solver, baseline_result = aniso40_solve
    nulls = solver.hierarchy.export_null_vectors()
    op = WilsonCloverOperator(ds.gauge(), **ds.operator_kwargs())
    b = SpinorField.random(ds.lattice(), rng=np.random.default_rng(0))

    results = {"numpy": baseline_result}
    for name in CANDIDATES:
        params = dataclasses.replace(solver.params, backend=name)
        redo = MultigridSolver(
            op, params, np.random.default_rng(1), null_vectors=nulls
        )
        results[name] = redo.solve(b.data, tol=TOL)
    return ds, results


def test_golden_exists():
    assert GOLDEN_PATH.exists(), (
        f"no golden record at {GOLDEN_PATH}; create it with "
        f"`pytest tests/test_golden_regression.py --regen-golden`"
    )


@pytest.mark.parametrize("backend", CANDIDATES)
def test_backend_reproduces_golden_record(backend_solves, backend):
    ds, results = backend_solves
    golden = load_golden(GOLDEN_PATH)
    record = golden_record(results[backend], subject=ds.label, tol=TOL)
    problems = compare_golden(record, golden)
    assert not problems, (
        f"backend {backend!r} drifted from the golden record:\n- "
        + "\n- ".join(problems)
    )


@pytest.mark.parametrize("backend", CANDIDATES)
def test_backend_iteration_counts_exactly_match_baseline(backend_solves, backend):
    """Layouts re-order arithmetic but must not change the iteration
    trajectory: the outer count and every level's GCR work match the
    baseline exactly, not merely within the comparator's slack."""
    _, results = backend_solves
    base = results["numpy"]
    cand = results[backend]
    assert cand.converged
    assert cand.iterations == base.iterations
    base_levels = {
        lvl: stats["gcr_iters"]
        for lvl, stats in base.telemetry.level_stats.items()
    }
    cand_levels = {
        lvl: stats["gcr_iters"]
        for lvl, stats in cand.telemetry.level_stats.items()
    }
    assert cand_levels == base_levels


@pytest.mark.parametrize("backend", CANDIDATES)
def test_backend_solution_close_to_baseline(backend_solves, backend):
    _, results = backend_solves
    base, cand = results["numpy"], results[backend]
    err = np.linalg.norm(cand.x - base.x) / np.linalg.norm(base.x)
    # both solutions satisfy the same 5e-6 residual bound; layouts only
    # reassociate sums, so they agree far tighter than the tolerance
    assert err <= 1e-6


def test_golden_record_is_baseline(aniso40_solve):
    """The committed record itself matches what the baseline just did."""
    ds, _solver, result = aniso40_solve
    golden = json.loads(GOLDEN_PATH.read_text())
    record = golden_record(result, subject=ds.label, tol=TOL)
    assert not compare_golden(record, golden)

"""Field containers: spinor and gauge fields."""

import numpy as np
import pytest

from repro.fields import GaugeField, SpinorField
from repro.precision import Precision
from repro.lattice import Lattice


class TestSpinorField:
    def test_zeros(self, lat44):
        f = SpinorField.zeros(lat44)
        assert f.data.shape == (lat44.volume, 4, 3)
        assert f.norm2() == 0.0
        assert f.ns == 4 and f.nc == 3 and f.site_dof == 12

    def test_coarse_shape(self, lat44):
        f = SpinorField.zeros(lat44, ns=2, nc=24)
        assert f.data.shape == (lat44.volume, 2, 24)

    def test_random_deterministic(self, lat44):
        a = SpinorField.random(lat44, rng=np.random.default_rng(3))
        b = SpinorField.random(lat44, rng=np.random.default_rng(3))
        assert np.array_equal(a.data, b.data)

    def test_point_source(self, lat44):
        f = SpinorField.point_source(lat44, site=5, spin=2, color=1)
        assert f.norm2() == 1.0
        assert f.data[5, 2, 1] == 1.0

    def test_norm_and_dot_consistent(self, lat44):
        f = SpinorField.random(lat44, rng=np.random.default_rng(4))
        assert f.dot(f).real == pytest.approx(f.norm2())
        assert f.norm() == pytest.approx(np.sqrt(f.norm2()))

    def test_dot_conjugate_linear(self, lat44):
        r = np.random.default_rng(5)
        a = SpinorField.random(lat44, rng=r)
        b = SpinorField.random(lat44, rng=r)
        assert a.dot(b) == pytest.approx(np.conj(b.dot(a)))
        assert a.dot(b * 2j) == pytest.approx(2j * a.dot(b))
        assert (a * 2j).dot(b) == pytest.approx(-2j * a.dot(b))

    def test_arithmetic(self, lat44):
        r = np.random.default_rng(6)
        a = SpinorField.random(lat44, rng=r)
        b = SpinorField.random(lat44, rng=r)
        c = a + b - a
        np.testing.assert_allclose(c.data, b.data)
        np.testing.assert_allclose((-a).data, -a.data)
        np.testing.assert_allclose((a * 2.0).data, (2.0 * a).data)

    def test_axpy(self, lat44):
        r = np.random.default_rng(7)
        a = SpinorField.random(lat44, rng=r)
        b = SpinorField.random(lat44, rng=r)
        expect = b.data + 0.5j * a.data
        b.axpy(0.5j, a)
        np.testing.assert_allclose(b.data, expect)

    def test_xpay(self, lat44):
        r = np.random.default_rng(8)
        a = SpinorField.random(lat44, rng=r)
        b = SpinorField.random(lat44, rng=r)
        expect = a.data + 0.5 * b.data
        b.xpay(a, 0.5)
        np.testing.assert_allclose(b.data, expect)

    def test_shape_mismatch_raises(self, lat44):
        a = SpinorField.zeros(lat44)
        b = SpinorField.zeros(lat44, ns=2, nc=4)
        with pytest.raises(ValueError):
            a + b

    def test_lattice_mismatch_raises(self, lat44, lat2):
        a = SpinorField.zeros(lat44)
        b = SpinorField.zeros(lat2)
        with pytest.raises(ValueError):
            a + b

    def test_bad_data_shape_raises(self, lat44):
        with pytest.raises(ValueError):
            SpinorField(lat44, np.zeros((7, 4, 3), dtype=complex))

    def test_round_to_half(self, lat44):
        f = SpinorField.random(lat44, rng=np.random.default_rng(9))
        g = f.round_to(Precision.HALF)
        assert g.data.shape == f.data.shape
        rel = (f - g).norm() / f.norm()
        assert 0 < rel < 1e-3

    def test_copy_is_independent(self, lat44):
        f = SpinorField.random(lat44, rng=np.random.default_rng(10))
        g = f.copy()
        g.data[0, 0, 0] = 99.0
        assert f.data[0, 0, 0] != 99.0


class TestGaugeField:
    def test_identity_unitary(self, lat44):
        u = GaugeField.identity(lat44)
        assert u.unitarity_violation() < 1e-15
        assert u.determinant_violation() < 1e-15

    def test_bad_shape_raises(self, lat44):
        with pytest.raises(ValueError):
            GaugeField(lat44, np.zeros((4, 7, 3, 3), dtype=complex))

    def test_dagger_at(self, gauge44):
        sites = np.array([0, 5, 9])
        d = gauge44.dagger_at(1, sites)
        expect = np.conj(np.swapaxes(gauge44.data[1, sites], -1, -2))
        assert np.array_equal(d, expect)

    def test_copy_independent(self, gauge44):
        c = gauge44.copy()
        c.data[0, 0] = 0
        assert gauge44.unitarity_violation() < 1e-12

"""Golden convergence regression for the block-GCR outer solve.

Freezes the per-RHS convergence signature (iteration counts, shared
matvec-batch count, final residuals) of a deterministic K=3 block-GCR
solve on the Aniso40-scaled dataset, preconditioned by the batched
full-depth K-cycle.  A change to the block solver or any batched level
that moves these numbers beyond the comparator's slack fails here —
regenerate deliberately with ``pytest --regen-golden`` and commit the
diff if the change is intended.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.mg.multi_rhs import batched_preconditioner_for
from repro.solvers import block_gcr
from repro.verify.golden import (
    BLOCK_SCHEMA,
    block_golden_record,
    compare_block_golden,
    load_golden,
    write_golden,
)

pytestmark = [pytest.mark.verify, pytest.mark.mrhs]

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "block-gcr-aniso40.json"
TOL = 5e-6
N_RHS = 3


@pytest.fixture(scope="module")
def block_solve(aniso40_solve):
    """Deterministic block-GCR solve sharing the session hierarchy."""
    ds, solver, _ = aniso40_solve
    rng = np.random.default_rng(42)
    shape = (N_RHS, ds.lattice().volume, 4, 3)
    bs = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    results = block_gcr(
        solver.hierarchy.levels[0].op,
        bs,
        tol=TOL,
        maxiter=solver.params.outer_maxiter,
        nkrylov=solver.params.outer_nkrylov,
        preconditioner=batched_preconditioner_for(solver.hierarchy),
    )
    return ds, bs, results


@pytest.fixture()
def fresh_record(block_solve):
    ds, _bs, results = block_solve
    return block_golden_record(results, subject=ds.label, tol=TOL)


def test_block_golden_matches(fresh_record, request):
    if request.config.getoption("--regen-golden"):
        path = write_golden(GOLDEN_PATH, fresh_record)
        pytest.skip(f"block golden record regenerated at {path}")
    assert GOLDEN_PATH.exists(), (
        f"no golden record at {GOLDEN_PATH}; create it with "
        f"`pytest {__file__} --regen-golden`"
    )
    golden = load_golden(GOLDEN_PATH)
    problems = compare_block_golden(fresh_record, golden)
    assert not problems, (
        "block convergence drifted from golden record:\n- "
        + "\n- ".join(problems)
    )


def test_record_shape(fresh_record):
    assert fresh_record["schema"] == BLOCK_SCHEMA
    assert fresh_record["n_rhs"] == N_RHS
    assert fresh_record["all_converged"] is True
    assert len(fresh_record["iterations"]) == N_RHS
    assert all(r <= TOL for r in fresh_record["final_residuals"])
    # the whole point of the block solve: one shared space, so the
    # batch count cannot exceed the worst per-RHS iteration count
    assert fresh_record["matvec_batches"] <= max(fresh_record["iterations"]) + 1


class TestComparator:
    """The block comparator must accept slack and catch real drift."""

    BASE = {
        "schema": BLOCK_SCHEMA,
        "subject": "x",
        "tol": 1e-6,
        "n_rhs": 3,
        "all_converged": True,
        "iterations": [10, 11, 12],
        "matvec_batches": 12,
        "final_residuals": [5e-7, 6e-7, 7e-7],
    }

    def test_identical_records_match(self):
        assert compare_block_golden(dict(self.BASE), dict(self.BASE)) == []

    def test_small_drift_tolerated(self):
        moved = dict(
            self.BASE,
            iterations=[11, 12, 13],
            matvec_batches=13,
            final_residuals=[6e-7, 5e-7, 8e-7],
        )
        assert compare_block_golden(moved, self.BASE) == []

    def test_iteration_blowup_caught(self):
        moved = dict(self.BASE, iterations=[10, 11, 30], matvec_batches=30)
        assert compare_block_golden(moved, self.BASE)

    def test_batch_size_mismatch_caught(self):
        moved = dict(self.BASE, n_rhs=4, iterations=[10, 11, 12, 12],
                     final_residuals=[5e-7] * 4)
        assert compare_block_golden(moved, self.BASE)

    def test_convergence_loss_caught(self):
        moved = dict(self.BASE, all_converged=False)
        assert compare_block_golden(moved, self.BASE)

    def test_residual_blowup_caught(self):
        moved = dict(self.BASE, final_residuals=[5e-7, 6e-7, 9e-6])
        assert compare_block_golden(moved, self.BASE)

"""The Sheikholeslami-Wohlert clover term."""

import numpy as np
import pytest

from repro.dirac import CloverTerm, WilsonCloverOperator
from repro.dirac.gamma import chirality_slices
from repro.gauge import free_field, random_su3
from repro.lattice import Lattice
from tests.conftest import random_spinor
from tests.test_gauge_loops import gauge_transform


@pytest.fixture(scope="module")
def clover(gauge44):
    return CloverTerm.from_gauge(gauge44, c_sw=1.0)


class TestStructure:
    def test_blocks_shape(self, clover, lat44):
        assert clover.blocks.shape == (lat44.volume, 2, 6, 6)

    def test_hermitian(self, clover):
        assert clover.hermiticity_violation() < 1e-13

    def test_zero_constructor(self):
        c = CloverTerm.zero(16)
        assert np.abs(c.blocks).max() == 0.0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            CloverTerm(np.zeros((4, 2, 5, 5), dtype=complex))

    def test_nonzero_on_rough_field(self, clover):
        assert np.abs(clover.blocks).max() > 1e-3

    def test_csw_scales_linearly(self, gauge44):
        c1 = CloverTerm.from_gauge(gauge44, c_sw=1.0)
        c2 = CloverTerm.from_gauge(gauge44, c_sw=2.0)
        np.testing.assert_allclose(c2.blocks, 2 * c1.blocks, atol=1e-13)

    def test_free_field_zero(self, lat44):
        c = CloverTerm.from_gauge(free_field(lat44), c_sw=1.0)
        assert np.abs(c.blocks).max() < 1e-14


class TestApply:
    def test_chirality_preserved(self, clover, lat44):
        up, down = chirality_slices()
        v = random_spinor(lat44, seed=30)
        v[:, down, :] = 0  # pure upper chirality
        out = clover.apply(v)
        assert np.abs(out[:, down, :]).max() < 1e-14

    def test_apply_hermitian(self, clover, lat44):
        v = random_spinor(lat44, seed=31)
        w = random_spinor(lat44, seed=32)
        lhs = np.vdot(w.ravel(), clover.apply(v).ravel())
        rhs = np.conj(np.vdot(v.ravel(), clover.apply(w).ravel()))
        assert abs(lhs - rhs) < 1e-10 * max(abs(lhs), 1)

    def test_shifted_adds_identity(self, clover, lat44):
        v = random_spinor(lat44, seed=33)
        shifted = CloverTerm(clover.shifted(2.5))
        np.testing.assert_allclose(
            shifted.apply(v), clover.apply(v) + 2.5 * v, atol=1e-12
        )

    def test_gauge_covariance(self, gauge44, lat44):
        g = random_su3(np.random.default_rng(55), lat44.volume)
        v = random_spinor(lat44, seed=34)
        c = CloverTerm.from_gauge(gauge44, c_sw=1.0)
        cg = CloverTerm.from_gauge(gauge_transform(gauge44, g), c_sw=1.0)
        gv = np.einsum("xab,xsb->xsa", g, v)
        lhs = cg.apply(gv)
        rhs = np.einsum("xab,xsb->xsa", g, c.apply(v))
        np.testing.assert_allclose(lhs, rhs, atol=1e-11)


class TestInOperator:
    def test_operator_diag_includes_clover(self, gauge44, lat44):
        op = WilsonCloverOperator(gauge44, mass=0.2, c_sw=1.3)
        v = random_spinor(lat44, seed=35)
        expect = (4 + 0.2) * v + op.clover.apply(v)
        np.testing.assert_allclose(op.apply_diag(v), expect, atol=1e-12)

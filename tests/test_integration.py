"""Full-stack integration: gauge -> operator -> multigrid -> physics checks."""

import numpy as np
import pytest

from repro.comm import PartitionedOperator
from repro.dirac import SchurOperator, WilsonCloverOperator
from repro.fields import SpinorField
from repro.lattice import Lattice, Partition
from repro.mg import LevelParams, MGParams, MultigridSolver
from repro.precision import Precision
from repro.solvers import bicgstab, norm
from repro.workloads import ANISO40_SCALED, run_propagator
from tests.conftest import random_spinor


@pytest.fixture(scope="module")
def dataset_op():
    ds = ANISO40_SCALED
    return ds, WilsonCloverOperator(ds.gauge(), **ds.operator_kwargs())


@pytest.fixture(scope="module")
def dataset_mg(dataset_op):
    ds, op = dataset_op
    params = MGParams(
        levels=[LevelParams(block=ds.blockings[0], n_null=6, null_iters=50)],
        outer_tol=ds.target_residuum,
    )
    return MultigridSolver(op, params, np.random.default_rng(3))


class TestEndToEnd:
    def test_mg_solves_scaled_dataset(self, dataset_op, dataset_mg):
        ds, op = dataset_op
        b = random_spinor(ds.lattice(), seed=50)
        res = dataset_mg.solve(b)
        assert res.converged
        assert norm(b - op.apply(res.x)) / norm(b) < 2 * ds.target_residuum

    def test_mg_vs_bicgstab_iteration_gap(self, dataset_op, dataset_mg):
        ds, op = dataset_op
        b = random_spinor(ds.lattice(), seed=51)
        mg_res = dataset_mg.solve(b)
        bi_res = bicgstab(op, b, tol=ds.target_residuum, maxiter=50000)
        assert mg_res.iterations * 3 < bi_res.iterations

    def test_propagator_workload(self, dataset_op, dataset_mg):
        ds, op = dataset_op

        def solve(b, tol_override=None):
            return dataset_mg.solve(b, tol=tol_override or ds.target_residuum)

        result = run_propagator(solve, ds.lattice(), op, n_components=2)
        assert len(result.iterations) == 2
        assert result.mean_iterations() < 60
        assert result.mean_error_over_residual() > 0
        stats = result.mean_level_stats()
        assert 0 in stats and stats[0]["op_applies"] > 0

    def test_point_source_propagator_decays(self, dataset_op, dataset_mg):
        # physics sanity: |propagator(x)| decays away from the source
        ds, op = dataset_op
        lat = ds.lattice()
        b = SpinorField.point_source(lat, 0, 0, 0)
        res = dataset_mg.solve(b.data, tol=1e-8)
        mag = np.abs(res.x).sum(axis=(1, 2))
        t = lat.site_coords[:, 3]
        near = mag[t == 1].mean()
        far = mag[t == lat.dims[3] // 2].mean()
        assert far < near

    def test_mixed_precision_mg(self, dataset_op):
        ds, op = dataset_op
        params = MGParams(
            levels=[LevelParams(block=ds.blockings[0], n_null=6, null_iters=40)],
            outer_tol=1e-8,
            smoother_precision=Precision.HALF,
            coarse_precision=Precision.SINGLE,
        )
        mgs = MultigridSolver(op, params, np.random.default_rng(4))
        b = random_spinor(ds.lattice(), seed=52)
        res = mgs.solve(b)
        assert res.converged
        assert norm(b - op.apply(res.x)) / norm(b) < 2e-8

    def test_partitioned_operator_in_mg_context(self, dataset_op):
        # the domain-decomposed operator produces identical fine-grid
        # applications, hence identical solver trajectories
        ds, op = dataset_op
        part = Partition(ds.lattice(), (1, 1, 1, 2))
        pop = PartitionedOperator(op, part)
        v = random_spinor(ds.lattice(), seed=53)
        np.testing.assert_array_equal(pop.apply(v), op.apply(v))

    def test_schur_and_full_mg_agree(self, dataset_op, dataset_mg):
        # solving via red-black BiCGStab and via MG gives the same x
        ds, op = dataset_op
        b = random_spinor(ds.lattice(), seed=54)
        x_mg = dataset_mg.solve(b, tol=1e-10).x
        schur = SchurOperator(op, 0)
        res = bicgstab(schur, schur.prepare_source(b), tol=1e-11, maxiter=50000)
        x_bi = schur.reconstruct(res.x, b)
        assert norm(x_mg - x_bi) / norm(x_bi) < 1e-7

"""Property tests for the packed even/odd SoA layout (``pytest -m backend``).

The SoA backend's correctness rests on three structural facts, pinned
here as hypothesis properties rather than fixed examples:

* packing is a pure permutation — ``unpack(pack(v))`` is *bitwise*
  equal to ``v`` for arbitrary field shapes;
* the even/odd site tables are complementary — together they are
  exactly ``range(V)``, disjointly, and each holds the sites whose
  coordinate sum has that parity;
* the packed application commutes with unpacking — applying the
  operator in packed parity planes and unpacking agrees with the
  baseline site-major application to rounding error.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.backend import (  # noqa: E402
    PackedParityField,
    get_backend,
    pack_parity,
    parity_sites,
    unpack_parity,
    use_backend,
)
from repro.dirac import WilsonCloverOperator  # noqa: E402
from repro.gauge import disordered_field  # noqa: E402
from repro.lattice import Lattice  # noqa: E402

from strategies import SEEDS, lattices, site_fields  # noqa: E402

pytestmark = pytest.mark.backend


# ----------------------------------------------------------------------
# packing is a pure permutation
# ----------------------------------------------------------------------
@given(site_fields())
def test_pack_unpack_roundtrip_is_bitwise(lat_fields):
    lat, fields = lat_fields
    v = fields[0]
    packed = pack_parity(lat, v)
    assert packed.planes.shape == (2, lat.volume // 2) + v.shape[1:]
    back = unpack_parity(packed)
    # a permutation moves bytes, never touches them: bitwise equality
    assert back.dtype == v.dtype
    assert np.array_equal(back.view(np.uint8), v.view(np.uint8))


@given(site_fields())
def test_pack_preserves_multiset_of_values(lat_fields):
    lat, fields = lat_fields
    v = fields[0]
    packed = pack_parity(lat, v)
    assert np.array_equal(
        np.sort(packed.planes.reshape(-1)), np.sort(v.reshape(-1))
    )


@given(lattices(), SEEDS)
def test_packed_planes_follow_parity_order(lat, seed):
    rng = np.random.default_rng(seed)
    v = rng.standard_normal((lat.volume, 2, 3))
    packed = pack_parity(lat, v)
    even, odd = parity_sites(lat)
    assert np.array_equal(packed.even, v[even])
    assert np.array_equal(packed.odd, v[odd])


# ----------------------------------------------------------------------
# parity masks are complementary
# ----------------------------------------------------------------------
@given(lattices())
def test_parity_sites_partition_the_lattice(lat):
    even, odd = parity_sites(lat)
    assert len(even) == len(odd) == lat.volume // 2
    together = np.concatenate([even, odd])
    assert np.array_equal(np.sort(together), np.arange(lat.volume))


@given(lattices())
def test_parity_sites_match_coordinate_parity(lat):
    even, odd = parity_sites(lat)
    parity = lat.site_coords.sum(axis=1) % 2
    assert np.array_equal(np.sort(even), np.flatnonzero(parity == 0))
    assert np.array_equal(np.sort(odd), np.flatnonzero(parity == 1))


@given(lattices())
def test_every_hop_crosses_parity(lat):
    """Nearest-neighbour hops are strictly parity-to-parity — the fact
    that lets the SoA backend drop zero-padded intermediates."""
    even, _ = parity_sites(lat)
    is_even = np.zeros(lat.volume, dtype=bool)
    is_even[even] = True
    for mu in range(4):
        assert np.array_equal(is_even[lat.fwd[mu]], ~is_even)
        assert np.array_equal(is_even[lat.bwd[mu]], ~is_even)


# ----------------------------------------------------------------------
# packed apply commutes with unpack
# ----------------------------------------------------------------------
def _wilson_for(lat: Lattice, seed: int) -> WilsonCloverOperator:
    gauge = disordered_field(lat, np.random.default_rng(seed), 0.5)
    return WilsonCloverOperator(gauge, mass=-0.2, c_sw=1.0)


@settings(max_examples=15)
@given(SEEDS, SEEDS, st.integers(1, 4))
def test_packed_apply_commutes_with_unpack(op_seed, vec_seed, k):
    lat = Lattice((4, 4, 4, 4))
    op = _wilson_for(lat, op_seed)
    rng = np.random.default_rng(vec_seed)
    shape = (k, lat.volume, 4, 3)
    vs = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)

    soa = get_backend("soa")
    planes = np.stack(
        [pack_parity(lat, v).planes for v in vs], axis=1
    )  # (2, K, V/2, 4, 3)
    out_planes = soa.apply_packed_multi(op, planes)
    unpacked = np.stack(
        [
            unpack_parity(PackedParityField(lat, out_planes[:, i]))
            for i in range(k)
        ]
    )

    with use_backend("numpy"):
        want = op.apply_multi(vs)
    err = np.linalg.norm(unpacked - want) / np.linalg.norm(want)
    assert err <= 1e-12


@settings(max_examples=15)
@given(SEEDS, SEEDS)
def test_packed_hop_sum_commutes_with_unpack(op_seed, vec_seed):
    lat = Lattice((4, 4, 4, 4))
    op = _wilson_for(lat, op_seed)
    rng = np.random.default_rng(vec_seed)
    v = rng.standard_normal((lat.volume, 4, 3)) + 1j * rng.standard_normal(
        (lat.volume, 4, 3)
    )
    soa = get_backend("soa")
    planes = pack_parity(lat, v).planes[:, None]  # (2, 1, V/2, 4, 3)
    out = soa.hop_sum_packed_multi(op, planes)
    unpacked = unpack_parity(PackedParityField(lat, out[:, 0]))
    with use_backend("numpy"):
        want = op.apply_hopping(v)
    err = np.linalg.norm(unpacked - want) / np.linalg.norm(want)
    assert err <= 1e-12

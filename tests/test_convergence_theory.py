"""Multigrid convergence theory: smoothing and approximation properties.

The two classical ingredients (paper Section 3.4): a smoother that
damps high-frequency error, and a coarse space that captures the
near-null modes.  These tests measure both directly, plus the two-grid
error-contraction factor.
"""

import numpy as np
import pytest

from repro.dirac import WilsonCloverOperator
from repro.gauge import disordered_field
from repro.lattice import Blocking, Lattice
from repro.mg import (
    KCyclePreconditioner,
    LevelParams,
    MGParams,
    MultigridHierarchy,
    SchurMRSmoother,
    generate_null_vectors,
)
from repro.solvers import norm
from repro.transfer import Transfer
from tests.conftest import random_spinor


@pytest.fixture(scope="module")
def op():
    lat = Lattice((4, 4, 4, 8))
    u = disordered_field(lat, np.random.default_rng(11), 0.55, smear_steps=1)
    return WilsonCloverOperator(u, mass=-1.406 + 0.03, c_sw=1.0)


@pytest.fixture(scope="module")
def hierarchy(op):
    params = MGParams(
        levels=[LevelParams(block=(2, 2, 2, 4), n_null=8, null_iters=60)],
        outer_tol=1e-8,
    )
    return MultigridHierarchy.build(op, params, np.random.default_rng(5))


class TestSmoothingProperty:
    def test_smoother_damps_random_error_faster_than_null_modes(self, op, hierarchy):
        # random error (rich in high modes) must contract faster under
        # smoothing than a near-null vector (the lowest mode content)
        smoother = SchurMRSmoother(op, steps=4)
        null_vec = hierarchy.levels[0].null_vectors[0]

        def contraction(e):
            # smooth the system M z = M e from zero: new error e - z
            r = op.apply(e)
            z = smoother.apply(r)
            return norm(e - z) / norm(e)

        rand_e = random_spinor(op.lattice, seed=90)
        rand_e /= np.linalg.norm(rand_e.ravel())
        c_rand = contraction(rand_e)
        c_null = contraction(null_vec)
        assert c_rand < c_null

    def test_smoothing_reduces_residual_not_stalls(self, op):
        smoother = SchurMRSmoother(op, steps=4)
        r = random_spinor(op.lattice, seed=91)
        z = smoother.apply(r)
        assert norm(r - op.apply(z)) < 0.7 * norm(r)


class TestApproximationProperty:
    def test_coarse_space_captures_null_vectors(self, op, hierarchy):
        # weak approximation property: the prolongator reproduces the
        # near-null vectors it aggregated (exactly, by construction)
        lev = hierarchy.levels[0]
        t = lev.transfer
        for v in lev.null_vectors[:3]:
            pr = t.prolong(t.restrict(v))
            assert norm(pr - v) / norm(v) < 1e-10

    def test_coarse_space_misses_random_vectors(self, op, hierarchy):
        # a generic vector is NOT in the coarse range: P R is a genuine
        # projection, not the identity
        t = hierarchy.levels[0].transfer
        v = random_spinor(op.lattice, seed=92)
        pr = t.prolong(t.restrict(v))
        assert norm(pr - v) / norm(v) > 0.5

    def test_null_vectors_have_small_rayleigh_quotient(self, op, hierarchy):
        for v in hierarchy.levels[0].null_vectors[:3]:
            ray_null = norm(op.apply(v)) / norm(v)
            rand = random_spinor(op.lattice, seed=93)
            ray_rand = norm(op.apply(rand)) / norm(rand)
            assert ray_null < 0.25 * ray_rand


class TestTwoGridContraction:
    def test_error_contraction_per_cycle(self, op, hierarchy):
        # one K-cycle application as an iteration x -> x + B(b - Mx)
        # must contract the error strongly (factor well below 1/2)
        pre = KCyclePreconditioner(hierarchy)
        rng = np.random.default_rng(94)
        shape = (op.lattice.volume, 4, 3)
        e = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        factors = []
        for _ in range(3):
            r = op.apply(e)
            e = e - pre.apply(r)
            factors.append(norm(e))
        rho23 = factors[2] / factors[1]
        assert rho23 < 0.75  # asymptotic per-cycle contraction

    def test_contraction_beats_smoother_alone(self, op, hierarchy):
        pre = KCyclePreconditioner(hierarchy)
        smoother = SchurMRSmoother(op, steps=4)
        rng = np.random.default_rng(95)
        shape = (op.lattice.volume, 4, 3)
        e0 = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)

        def contract(apply_b, e, n=3):
            for _ in range(n):
                e = e - apply_b(op.apply(e))
            return norm(e) / norm(e0)

        rho_mg = contract(pre.apply, e0.copy())
        rho_sm = contract(smoother.apply, e0.copy())
        # the smoother alone stalls on the near-null space; MG does not
        assert rho_mg < 0.5 * rho_sm

    def test_more_null_vectors_contract_harder(self, op):
        rng_e = np.random.default_rng(96)
        shape = (op.lattice.volume, 4, 3)
        e0 = rng_e.standard_normal(shape) + 1j * rng_e.standard_normal(shape)
        rhos = {}
        for n_null in (2, 8):
            params = MGParams(
                levels=[LevelParams(block=(2, 2, 2, 4), n_null=n_null, null_iters=60)],
                outer_tol=1e-8,
            )
            h = MultigridHierarchy.build(op, params, np.random.default_rng(5))
            pre = KCyclePreconditioner(h)
            e = e0.copy()
            for _ in range(2):
                e = e - pre.apply(op.apply(e))
            rhos[n_null] = norm(e) / norm(e0)
        assert rhos[8] < rhos[2]

"""Adaptive multigrid: setup, hierarchy, K-cycle, solver."""

import numpy as np
import pytest

from repro.dirac import WilsonCloverOperator
from repro.gauge import disordered_field
from repro.lattice import Lattice
from repro.mg import (
    KCyclePreconditioner,
    LevelParams,
    MGParams,
    MultigridHierarchy,
    MultigridSolver,
    SchurMRSmoother,
    gcr_reductions,
    generate_null_vectors,
)
from repro.solvers import bicgstab, gcr, norm
from tests.conftest import random_spinor


@pytest.fixture(scope="module")
def critical_op():
    """A near-critical Wilson-Clover operator on 4x4x4x8."""
    lat = Lattice((4, 4, 4, 8))
    u = disordered_field(lat, np.random.default_rng(11), 0.55, smear_steps=1)
    # m_crit for this configuration is about -1.406 (measured via ARPACK)
    return WilsonCloverOperator(u, mass=-1.406 + 0.02, c_sw=1.0)


@pytest.fixture(scope="module")
def mg_solver(critical_op):
    params = MGParams(
        levels=[LevelParams(block=(2, 2, 2, 4), n_null=8, null_iters=50)],
        outer_tol=1e-8,
    )
    return MultigridSolver(critical_op, params, np.random.default_rng(5))


class TestNullVectors:
    def test_count_and_normalization(self, wilson448):
        nulls = generate_null_vectors(wilson448, 3, np.random.default_rng(1), 30)
        assert len(nulls) == 3
        for v in nulls:
            assert np.linalg.norm(v.ravel()) == pytest.approx(1.0)

    def test_rich_in_low_modes(self, critical_op):
        # relaxation must suppress |Mv|/|v| well below a random vector's
        nulls = generate_null_vectors(critical_op, 2, np.random.default_rng(2), 60)
        lat = critical_op.lattice
        rand = random_spinor(lat, seed=3)
        rand /= np.linalg.norm(rand.ravel())
        ray_rand = np.linalg.norm(critical_op.apply(rand).ravel())
        for v in nulls:
            ray = np.linalg.norm(critical_op.apply(v).ravel())
            assert ray < 0.3 * ray_rand

    def test_vectors_differ(self, wilson448):
        nulls = generate_null_vectors(wilson448, 2, np.random.default_rng(4), 20)
        overlap = abs(np.vdot(nulls[0].ravel(), nulls[1].ravel()))
        assert overlap < 0.99


class TestHierarchy:
    def test_level_structure(self, critical_op):
        params = MGParams(
            levels=[
                LevelParams(block=(2, 2, 2, 2), n_null=4, null_iters=20),
                LevelParams(block=(1, 1, 1, 2), n_null=3, null_iters=20),
            ]
        )
        h = MultigridHierarchy.build(critical_op, params, np.random.default_rng(6))
        assert h.n_levels == 3
        assert h.levels[0].op is critical_op
        assert h.levels[1].op.lattice.dims == (2, 2, 2, 4)
        assert h.levels[1].op.nc == 4
        assert h.levels[1].op.ns == 2
        assert h.levels[2].op.lattice.dims == (2, 2, 2, 2)
        assert h.levels[2].op.nc == 3

    def test_coarsest_flag(self, mg_solver):
        levels = mg_solver.hierarchy.levels
        assert not levels[0].is_coarsest
        assert levels[-1].is_coarsest

    def test_stats_reset(self, mg_solver):
        mg_solver.hierarchy.levels[0].stats.op_applies = 42
        mg_solver.hierarchy.reset_stats()
        assert mg_solver.hierarchy.levels[0].stats.op_applies == 0


class TestSmoother:
    def test_reduces_residual(self, critical_op):
        s = SchurMRSmoother(critical_op, steps=4)
        r = random_spinor(critical_op.lattice, seed=7)
        z = s.apply(r)
        assert norm(r - critical_op.apply(z)) < norm(r)

    def test_more_steps_smooth_more(self, critical_op):
        r = random_spinor(critical_op.lattice, seed=8)
        res = []
        for steps in (1, 4):
            z = SchurMRSmoother(critical_op, steps=steps).apply(r)
            res.append(norm(r - critical_op.apply(z)))
        assert res[1] < res[0]


class TestKCycle:
    def test_preconditioner_accelerates_gcr(self, mg_solver, critical_op):
        b = random_spinor(critical_op.lattice, seed=9)
        plain = gcr(critical_op, b, tol=1e-8, maxiter=2000)
        pre = gcr(
            critical_op,
            b,
            tol=1e-8,
            maxiter=200,
            preconditioner=KCyclePreconditioner(mg_solver.hierarchy),
        )
        assert pre.converged
        assert pre.iterations < plain.iterations / 3

    def test_gcr_reductions_formula(self):
        assert gcr_reductions(0, 10) == 0
        assert gcr_reductions(1, 10) == 3
        assert gcr_reductions(3, 10) == 3 + 4 + 5
        # restart resets the orthogonalization depth
        assert gcr_reductions(4, 2) == 3 + 4 + 3 + 4


class TestMultigridSolver:
    def test_converges(self, mg_solver, critical_op):
        b = random_spinor(critical_op.lattice, seed=10)
        res = mg_solver.solve(b)
        assert res.converged
        assert norm(b - critical_op.apply(res.x)) / norm(b) < 2e-8

    def test_beats_bicgstab_iterations(self, mg_solver, critical_op):
        b = random_spinor(critical_op.lattice, seed=11)
        res_mg = mg_solver.solve(b)
        res_bi = bicgstab(critical_op, b, tol=1e-8, maxiter=20000)
        assert res_mg.iterations < res_bi.iterations / 5

    def test_iteration_count_stable_near_criticality(self, critical_op):
        # the paper's central claim: MG iterations do not blow up as the
        # mass approaches criticality (critical slowing down removed)
        lat = critical_op.lattice
        gauge = critical_op.gauge
        b = random_spinor(lat, seed=12)
        iters = []
        for dm in (0.1, 0.02):
            op = WilsonCloverOperator(gauge, mass=-1.406 + dm, c_sw=1.0)
            params = MGParams(
                levels=[LevelParams(block=(2, 2, 2, 4), n_null=8, null_iters=50)],
                outer_tol=1e-8,
            )
            mgs = MultigridSolver(op, params, np.random.default_rng(5))
            iters.append(mgs.solve(b).iterations)
        assert iters[1] <= 3 * iters[0]

    def test_level_stats_recorded(self, mg_solver, critical_op):
        b = random_spinor(critical_op.lattice, seed=13)
        res = mg_solver.solve(b)
        stats = res.extra["level_stats"]
        assert set(stats.keys()) == {0, 1}
        assert stats[0]["smoother_applies"] > 0
        assert stats[0]["restricts"] == stats[0]["prolongs"] > 0
        assert stats[1]["gcr_iters"] > 0

    def test_tol_override(self, mg_solver, critical_op):
        b = random_spinor(critical_op.lattice, seed=14)
        loose = mg_solver.solve(b, tol=1e-4)
        tight = mg_solver.solve(b, tol=1e-9)
        assert loose.iterations < tight.iterations

    def test_solve_field(self, mg_solver, critical_op):
        from repro.fields import SpinorField

        b = SpinorField(critical_op.lattice, random_spinor(critical_op.lattice, seed=15))
        x, res = mg_solver.solve_field(b)
        assert res.converged
        assert x.lattice == critical_op.lattice

    def test_initial_guess(self, mg_solver, critical_op):
        b = random_spinor(critical_op.lattice, seed=16)
        x_exact = mg_solver.solve(b, tol=1e-10).x
        warm = mg_solver.solve(b, x0=x_exact, tol=1e-8)
        assert warm.iterations <= 1

    def test_three_level_solver(self, critical_op):
        params = MGParams(
            levels=[
                LevelParams(block=(2, 2, 2, 2), n_null=6, null_iters=40),
                LevelParams(block=(1, 1, 1, 2), n_null=4, null_iters=30),
            ],
            outer_tol=1e-8,
        )
        mgs = MultigridSolver(critical_op, params, np.random.default_rng(7))
        b = random_spinor(critical_op.lattice, seed=17)
        res = mgs.solve(b)
        assert res.converged
        assert set(res.extra["level_stats"].keys()) == {0, 1, 2}

    def test_subspace_label(self, mg_solver):
        assert mg_solver.params.subspace_label() == "8"

    def test_solve_multi_shares_setup(self, mg_solver, critical_op):
        bs = np.stack(
            [random_spinor(critical_op.lattice, seed=800 + k) for k in range(3)]
        )
        results = mg_solver.solve_multi(bs, tol=1e-8)
        assert len(results) == 3
        for res, b in zip(results, bs):
            assert res.converged
            assert norm(b - critical_op.apply(res.x)) / norm(b) < 2e-8

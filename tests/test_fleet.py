"""Fleet serving: spec, affinity routing, spill replication, placement."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.dirac import WilsonCloverOperator
from repro.fleet import (
    EnsembleLoad,
    FakeFleetGenerator,
    FleetNode,
    FleetRouter,
    FleetSpec,
    RouterConfig,
    class_throughput,
    model_speed_factor,
    plan_placement,
    speed_factor,
)
from repro.fleet.router import _rendezvous_score
from repro.gauge import disordered_field
from repro.gpu.device import DEVICES, K20X
from repro.lattice import Lattice
from repro.mg import LevelParams, MGParams
from repro.serve import (
    ServeConfig,
    ServiceOverloadedError,
    SetupCache,
    setup_cache_key,
)
from repro.telemetry.context import TraceContext, activate

pytestmark = pytest.mark.fleet

TOL = 1e-7


@pytest.fixture(scope="module")
def lattice():
    return Lattice((4, 4, 4, 8))


@pytest.fixture(scope="module")
def gauge(lattice):
    return disordered_field(
        lattice, np.random.default_rng(11), 0.55, smear_steps=1
    )


@pytest.fixture(scope="module")
def ops(gauge):
    # two ensembles: same configuration, shifted quark mass
    return {
        "m0": WilsonCloverOperator(gauge, mass=-1.406 + 0.03, c_sw=1.0),
        "m1": WilsonCloverOperator(gauge, mass=-1.406 + 0.035, c_sw=1.0),
    }


@pytest.fixture(scope="module")
def params():
    return MGParams(
        levels=[LevelParams(block=(2, 2, 2, 4), n_null=6, null_iters=30)],
        outer_tol=TOL,
    )


@pytest.fixture(scope="module")
def sources(lattice):
    rng = np.random.default_rng(3)
    shape = (12, lattice.volume, 4, 3)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


@pytest.fixture(scope="module")
def fleet():
    return FleetSpec(
        name="test2",
        nodes=(
            FleetNode(id="a100-0", device_name="A100"),
            FleetNode(id="t4-0", device_name="T4"),
        ),
    )


@pytest.fixture(scope="module")
def hierarchies(ops, params):
    """Shared prebuilt hierarchy store (one adaptive setup per ensemble)."""
    source = SetupCache()
    for op in ops.values():
        source.get_or_build(op, params, np.random.default_rng(5))
    return source


def make_router(fleet, hierarchies, **cfg_kwargs) -> FleetRouter:
    cfg = RouterConfig(
        spill_threshold=cfg_kwargs.pop("spill_threshold", 2),
        serve=ServeConfig(max_batch=4, max_wait_s=0.01, queue_capacity=64),
        **cfg_kwargs,
    )
    return FleetRouter(fleet, cfg, hierarchy_source=hierarchies)


# -- fleet spec ---------------------------------------------------------


class TestFleetSpec:
    def test_json_round_trip(self, fleet, tmp_path):
        path = tmp_path / "fleet.json"
        fleet.save(path)
        loaded = FleetSpec.load(path)
        assert loaded == fleet
        assert FleetSpec.from_dict(fleet.to_dict()) == fleet

    def test_generator_is_deterministic(self):
        gen = (
            FakeFleetGenerator()
            .set_node_statistics(8, {"A100": 25, "L4": 25, "T4": 50})
            .set_link_statistics(avg_bandwidth_gbs=1.0, avg_latency_us=500.0)
        )
        a = gen.generate(name="f", seed=42)
        b = gen.generate(name="f", seed=42)
        assert a.to_dict() == b.to_dict()
        assert a.device_mix() == {"A100": 2, "L4": 2, "T4": 4}

    def test_generator_apportions_small_fleets(self):
        spec = (
            FakeFleetGenerator()
            .set_node_statistics(4, {"A100": 25, "L4": 25, "T4": 50})
            .generate(name="f4", seed=0)
        )
        assert sum(spec.device_mix().values()) == 4
        assert spec.device_mix()["T4"] == 2

    def test_subset_takes_fastest_first(self, fleet):
        one = fleet.subset(1)
        assert len(one.nodes) == 1
        assert one.nodes[0].device_name == "A100"

    def test_speed_factors_ordered(self):
        s = {name: speed_factor(dev) for name, dev in DEVICES.items()}
        assert s["Tesla K20X"] == pytest.approx(1.0)
        assert (
            s["A100"] > s["Tesla P100"] > s["L4"] > s["T4"] > s["Tesla K20X"]
        )


# -- affinity hashing ---------------------------------------------------


class TestAffinity:
    def test_rendezvous_is_consistent_under_node_removal(self):
        node_ids = [f"n{i}" for i in range(6)]

        def winner(fp, nodes):
            return max(nodes, key=lambda n: _rendezvous_score(fp, n))

        fingerprints = [f"op{i}" for i in range(64)]
        homes = {fp: winner(fp, node_ids) for fp in fingerprints}
        removed = node_ids[2]
        survivors = [n for n in node_ids if n != removed]
        for fp in fingerprints:
            new_home = winner(fp, survivors)
            if homes[fp] != removed:
                # only operators homed on the removed node move
                assert new_home == homes[fp]

    def test_router_homes_by_fingerprint(self, fleet, hierarchies, ops, params):
        with make_router(fleet, hierarchies) as router:
            home = router.register("m0", ops["m0"], params)
            fp = setup_cache_key(ops["m0"], params)
            assert home == router.affinity_order(fp)[0]
            assert router.replicas("m0") == [home]


# -- overload payload ---------------------------------------------------


class TestOverloadPayload:
    def test_machine_readable_fields(self):
        exc = ServiceOverloadedError(
            "queue full", queue_depth=7, capacity=8, retry_after_s=1.25
        )
        d = exc.to_dict()
        assert d["error"] == "overloaded"
        assert d["queue_depth"] == 7
        assert d["capacity"] == 8
        assert d["retry_after_s"] == pytest.approx(1.25)


# -- hierarchy seeding --------------------------------------------------


class TestHierarchySeeding:
    def test_seed_makes_get_or_build_a_hit(self, ops, params, hierarchies):
        op = ops["m0"]
        built = hierarchies.get_or_build(op, params)
        fresh = SetupCache()
        key = fresh.seed(op, params, built)
        assert key == setup_cache_key(op, params)
        got = fresh.get_or_build(op, params)
        assert got is built
        assert fresh.stats["seeded"] == 1
        assert fresh.stats["misses"] == 0


# -- placement ----------------------------------------------------------


class TestPlacement:
    def test_plan_covers_all_ensembles(self, fleet):
        loads = [
            EnsembleLoad(name=f"e{i}", dims=(4, 4, 4, 8)) for i in range(4)
        ]
        plan = plan_placement(fleet, loads)
        homes = plan.homes
        assert sorted(homes) == [e.name for e in loads]
        node_ids = {n.id for n in fleet.nodes}
        assert set(homes.values()) <= node_ids
        assert plan.makespan_s > 0

    def test_model_speed_factor_ranks_devices(self, fleet):
        load = EnsembleLoad(name="e", dims=(4, 4, 4, 8))
        a100, t4 = fleet.nodes
        fa, ft = model_speed_factor(a100, load), model_speed_factor(t4, load)
        assert fa > ft > 1.0
        k20x = FleetNode(id="k", device_name=K20X.name)
        assert model_speed_factor(k20x, load) == pytest.approx(1.0)

    def test_class_throughput_ranks_fast_class_higher(self, fleet):
        load = EnsembleLoad(name="e", dims=(4, 4, 4, 8))
        caps = class_throughput(fleet, load)
        assert caps["A100"].solves_per_hour > caps["T4"].solves_per_hour


# -- routing under load -------------------------------------------------


def _agg_rps(router, n_requests) -> float:
    busy = [s["device_busy_s"] for s in router.shard_stats()]
    return n_requests / max(busy)


class TestHotKeySkew:
    def test_hot_key_replicates_and_survives(
        self, fleet, hierarchies, ops, params, sources
    ):
        """The acceptance bar: hot-key traffic triggers spill
        replication and stays within 2x of uniform throughput."""
        n = len(sources)
        # uniform: both ensembles, explicit homes on distinct nodes
        with make_router(fleet, hierarchies) as router:
            router.register("m0", ops["m0"], params, home="a100-0")
            router.register("m1", ops["m1"], params, home="t4-0")
            names = ["m0", "m1"]
            futs = [
                router.submit(names[i % 2], b)
                for i, b in enumerate(sources)
            ]
            results = [f.result() for f in futs]
            assert all(r.converged for r in results)
            uniform_rps = _agg_rps(router, n)

        # hot: every request hits one ensemble
        with make_router(fleet, hierarchies) as router:
            router.register("m0", ops["m0"], params, home="a100-0")
            futs = [router.submit("m0", b) for b in sources]
            results = [f.result() for f in futs]
            assert all(r.converged for r in results)
            assert router.stats["replications"] >= 1
            assert len(router.replicas("m0")) == 2
            assert router.stats["spilled"] >= 1
            hot_rps = _agg_rps(router, n)

        assert hot_rps >= 0.5 * uniform_rps, (
            f"hot {hot_rps:.2f} req/s vs uniform {uniform_rps:.2f} req/s"
        )

    def test_replica_adoption_reuses_hierarchy(
        self, fleet, hierarchies, ops, params, sources
    ):
        """Spilling ships the setup: no shard re-runs null-vector work."""
        with make_router(fleet, hierarchies) as router:
            router.register("m0", ops["m0"], params)
            for b in sources[:8]:
                router.submit("m0", b)
            # every shard cache was seeded/adopted, never built
            for shard in router.shards.values():
                assert shard.cache.stats["misses"] == 0
            router.close(drain=True)


# -- trace propagation --------------------------------------------------


class TestTracePropagation:
    def test_ingress_trace_id_survives_router_hop(
        self, fleet, hierarchies, ops, params, sources
    ):
        with make_router(fleet, hierarchies) as router:
            router.register("m0", ops["m0"], params)
            ctx = TraceContext(attrs={"client": "test"})
            with activate(ctx):
                fut = router.submit("m0", sources[0])
            res = fut.result()
        assert res.converged
        assert res.telemetry.attrs["trace_id"] == ctx.trace_id
        # the fleet attribution is stamped by a done-callback; poll
        deadline = time.monotonic() + 2.0
        while "fleet" not in res.telemetry.attrs:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        fleet_attr = res.telemetry.attrs["fleet"]
        assert fleet_attr["shard"] in {n.id for n in fleet.nodes}
        assert fleet_attr["device"] in DEVICES

    def test_router_mints_trace_when_client_has_none(
        self, fleet, hierarchies, ops, params, sources
    ):
        with make_router(fleet, hierarchies) as router:
            router.register("m0", ops["m0"], params)
            res = router.solve("m0", sources[1])
        assert res.telemetry.attrs["trace_id"]

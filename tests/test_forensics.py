"""Performance forensics: critical-path extraction, the halo overlap
model, Perfetto trace-event export, span-granular trace diffing and the
bench-trajectory regression scan.

Everything here runs on synthetic ``repro.telemetry/v1`` span forests
(plus real :class:`~repro.telemetry.Tracer` round-trips for the export
paths), so the suite is fast and deterministic.  The serve-integration
side (ragged batches, shard tracks from a live service) lives in
``test_obs_serve.py``.  Run the group with ``pytest -q -m obs``.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.forensics import (
    COMM_SPAN_NAMES,
    critical_path,
    diff_trace_documents,
    load_trajectory,
    overlap_report,
    perfetto_document,
    render_critical_path,
    render_overlap,
    scan_trajectory,
    write_perfetto,
)
from repro.obs.forensics.critical_path import hot_spans
from repro.obs.forensics.tracediff import trace_diff_main, trace_nodes
from repro.obs.forensics.trend import trend_main
from repro.perf.ledger import (
    TRAJECTORY_SCHEMA,
    append_trajectory_point,
    trajectory_point,
)
from repro.telemetry import Tracer, trace_document

pytestmark = pytest.mark.obs


# ----------------------------------------------------------------------
# synthetic span forests
# ----------------------------------------------------------------------
def span(name, start, end, level=None, children=(), attrs=None, events=(),
         wall0=1_000.0):
    """One serialized span; wall_start offset from a fixed epoch."""
    a = dict(attrs or {})
    if level is not None:
        a["level"] = level
    return {
        "name": name,
        "attrs": a,
        "children": list(children),
        "start_s": start,
        "end_s": end,
        "duration_s": end - start,
        "wall_start": wall0 + start,
        "trace_id": "t" * 32,
        "span_id": f"{abs(hash(name)) % 10**16:016d}",
        "parent_id": None,
        "events": list(events),
        "dropped_events": 0,
    }


def doc_of(*roots, meta=None):
    return {
        "schema": "repro.telemetry/v1",
        "version": 1,
        "meta": dict(meta or {}),
        "spans": list(roots),
        "metrics": {},
    }


def solve_forest():
    """A two-level solve: smoothing dominates level 0."""
    halo = span("halo.exchange", 0.10, 0.30,
                attrs={"mu": 0, "sign": 1, "bytes": 1024.0})
    smooth = span("smoother", 0.30, 0.90, level=0,
                  attrs={"flops": 2e9, "bytes": 1e9, "roofline_fraction": 0.4})
    coarse = span("solve.gcr", 0.90, 0.95, level=1)
    return span("mg.solve", 0.0, 1.0, level=0,
                children=[halo, smooth, coarse])


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
class TestCriticalPath:
    def test_follows_heaviest_chain(self):
        rep = critical_path([solve_forest()])
        assert [n.name for n in rep.nodes] == ["mg.solve", "smoother"]
        assert rep.nodes[0].depth == 0
        assert rep.nodes[1].depth == 1

    def test_self_times_and_shares(self):
        rep = critical_path([solve_forest()])
        # mg.solve self: 1.0 - (0.2 + 0.6 + 0.05); smoother self: 0.6
        assert rep.nodes[0].self_s == pytest.approx(0.15)
        assert rep.nodes[1].self_s == pytest.approx(0.60)
        assert rep.path_s == pytest.approx(0.75)
        assert rep.nodes[1].share == pytest.approx(0.6 / 0.75)
        assert rep.nodes[1].cumulative_s == pytest.approx(0.75)
        assert rep.coverage == pytest.approx(0.75)

    def test_level_inherited_from_ancestor(self):
        # smoother has no level attr of its own here
        inner = span("smoother", 0.1, 0.9)
        root = span("solve.gcr", 0.0, 1.0, level=2, children=[inner])
        rep = critical_path([root])
        assert [n.level for n in rep.nodes] == [2, 2]

    def test_picks_heaviest_root(self):
        light = span("setup", 0.0, 0.2)
        heavy = solve_forest()
        rep = critical_path([light, heavy])
        assert rep.nodes[0].name == "mg.solve"
        assert rep.root_s == pytest.approx(1.0)
        assert rep.total_s == pytest.approx(1.2)

    def test_roofline_attrs_carried(self):
        rep = critical_path([solve_forest()])
        assert rep.nodes[1].attrs["roofline_fraction"] == pytest.approx(0.4)
        assert "flops" in rep.nodes[1].attrs

    def test_empty_forest(self):
        rep = critical_path([])
        assert rep.nodes == [] and rep.path_s == 0.0
        assert rep.coverage == 0.0
        assert "empty trace" in render_critical_path(rep)

    def test_render_and_to_dict(self):
        rep = critical_path([solve_forest()])
        text = render_critical_path(rep)
        assert "critical path" in text and "smoother" in text
        assert "share" in text and "roof%" in text
        d = rep.to_dict()
        assert d["schema"] == "repro.critical-path/v1"
        assert len(d["nodes"]) == 2

    def test_hot_spans_aggregates_across_paths(self):
        # the same kernel twice on different branches sums into one bucket
        a = span("smoother", 0.0, 0.3, level=0)
        b = span("smoother", 0.4, 0.9, level=0)
        root = span("mg.solve", 0.0, 1.0, level=0, children=[a, b])
        ranked = hot_spans([root])
        assert ranked[0] == ("smoother", 0, pytest.approx(0.8))


# ----------------------------------------------------------------------
# overlap headroom
# ----------------------------------------------------------------------
class TestOverlap:
    def test_fully_hideable(self):
        rep = overlap_report([solve_forest()])
        assert len(rep.groups) == 1
        g = rep.groups[0]
        assert g.comm_s == pytest.approx(0.2)
        # parent self 0.15 + smoother 0.6 + coarse 0.05
        assert g.compute_s == pytest.approx(0.8)
        assert g.hideable_s == pytest.approx(0.2)
        assert g.spans[0].verdict == "hideable"
        assert rep.headroom_fraction == pytest.approx(1.0)
        assert rep.ideal_s == pytest.approx(0.8)

    def test_partial_and_exposed_when_budget_short(self):
        # two exchanges, compute only covers 1.5 of the 4 comm seconds
        h1 = span("halo.exchange", 0.0, 1.0)
        h2 = span("halo.exchange", 1.0, 4.0)
        parent = span("comm.partitioned_apply", 0.0, 5.5,
                      children=[h1, h2])
        rep = overlap_report([parent])
        g = rep.groups[0]
        assert g.compute_s == pytest.approx(1.5)
        assert [s.verdict for s in g.spans] == ["hideable", "partial"]
        assert g.spans[1].hidden_s == pytest.approx(0.5)
        assert rep.exposed_s == pytest.approx(2.5)

    def test_exposed_when_no_compute(self):
        h = span("halo.exchange", 0.0, 1.0)
        parent = span("apply", 0.0, 1.0, children=[h])
        rep = overlap_report([parent])
        assert rep.groups[0].spans[0].verdict == "exposed"
        assert rep.headroom_fraction == pytest.approx(0.0)

    def test_no_comm_spans(self):
        rep = overlap_report([span("mg.solve", 0.0, 1.0)])
        assert rep.groups == []
        assert "no halo-exchange spans" in render_overlap(rep)

    def test_comm_alias_and_attrs(self):
        assert "comm.halo" in COMM_SPAN_NAMES
        rep = overlap_report([solve_forest()])
        attrs = rep.groups[0].spans[0].attrs
        assert attrs == {"mu": 0, "sign": 1, "bytes": 1024.0}

    def test_to_dict_schema(self):
        d = overlap_report([solve_forest()]).to_dict()
        assert d["schema"] == "repro.overlap/v1"
        assert d["headroom_fraction"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Perfetto export
# ----------------------------------------------------------------------
class TestPerfetto:
    def test_complete_events_with_args(self):
        p = perfetto_document(doc_of(solve_forest()))
        x = [e for e in p["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in x} == {
            "mg.solve", "halo.exchange", "smoother", "solve.gcr"
        }
        smoother = next(e for e in x if e["name"] == "smoother")
        assert smoother["dur"] == 600_000  # microseconds
        assert smoother["args"]["flops"] == 2e9
        assert smoother["cat"] == "smoother"
        assert smoother["args"]["trace_id"] == "t" * 32

    def test_monotone_ts_and_nesting(self):
        p = perfetto_document(doc_of(solve_forest()))
        timed = [e for e in p["traceEvents"] if e["ph"] in ("X", "i")]
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        by_name = {e["name"]: e for e in timed if e["ph"] == "X"}
        parent, child = by_name["mg.solve"], by_name["smoother"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_level_threads_and_metadata(self):
        p = perfetto_document(doc_of(solve_forest()))
        meta = [e for e in p["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"repro", "level 0", "level 1"} <= names
        x = {e["name"]: e for e in p["traceEvents"] if e["ph"] == "X"}
        assert x["mg.solve"]["tid"] != x["solve.gcr"]["tid"]

    def test_span_events_become_instants(self):
        ev = [{"name": "iteration", "t_s": 0.25, "severity": "info",
               "attrs": {"residual": 0.5}}]
        root = span("solve.gcr", 0.0, 1.0, events=ev)
        p = perfetto_document(doc_of(root))
        inst = [e for e in p["traceEvents"] if e["ph"] == "i"]
        assert len(inst) == 1
        assert inst[0]["name"] == "solve.gcr:iteration"
        assert inst[0]["s"] == "t"
        assert inst[0]["ts"] == 250_000
        assert inst[0]["args"]["residual"] == 0.5

    def test_fleet_stitching_one_track_per_shard(self):
        a = doc_of(span("serve.batch", 0.0, 1.0, attrs={"shard": "node-a"}))
        b = doc_of(span("serve.batch", 0.5, 1.5, attrs={"shard": "node-b"},
                        wall0=1_000.5))
        p = perfetto_document([a, b])
        x = [e for e in p["traceEvents"] if e["ph"] == "X"]
        assert len({e["pid"] for e in x}) == 2
        names = {e["args"]["name"]
                 for e in p["traceEvents"] if e["name"] == "process_name"}
        assert names == {"shard node-a", "shard node-b"}

    def test_child_clamped_into_parent(self):
        # monotonic duration leaks the child past the parent's end
        child = span("smoother", 0.9, 2.0)
        parent = span("mg.solve", 0.0, 1.0, children=[child])
        p = perfetto_document(doc_of(parent))
        x = {e["name"]: e for e in p["traceEvents"] if e["ph"] == "X"}
        pa, ch = x["mg.solve"], x["smoother"]
        assert ch["ts"] + ch["dur"] <= pa["ts"] + pa["dur"]

    def test_write_round_trip_from_live_tracer(self, tmp_path):
        tr = Tracer(enabled=True)
        with tr.span("mg.solve", level=0):
            with tr.span("smoother", level=0) as sm:
                sm.event("iteration", iteration=0, residual=1.0)
        doc = trace_document(tracer=tr, meta={"dataset": "unit"})
        out = write_perfetto(tmp_path / "t.perfetto.json", doc)
        loaded = json.loads(out.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["otherData"]["dataset"] == "unit"
        phases = {e["ph"] for e in loaded["traceEvents"]}
        assert {"X", "i", "M"} <= phases


# ----------------------------------------------------------------------
# trace diff
# ----------------------------------------------------------------------
class TestTraceDiff:
    def _pair(self, slow=2.0):
        a = doc_of(solve_forest(), meta={"backend": "numpy"})
        b_root = solve_forest()
        # slow the smoother down in the candidate
        b_root["children"][1]["end_s"] = 0.3 + 0.6 * slow
        b_root["children"][1]["duration_s"] = 0.6 * slow
        b_root["end_s"] = b_root["duration_s"] = 1.0 + 0.6 * (slow - 1)
        b = doc_of(b_root, meta={"backend": "einsum"})
        return a, b

    def test_nodes_keyed_by_level_and_name(self):
        nodes = trace_nodes(doc_of(solve_forest()))
        assert set(nodes) == {
            "L0/mg.solve", "L0/halo.exchange", "L0/smoother", "L1/solve.gcr"
        }
        assert nodes["L0/smoother"].self_s == pytest.approx(0.6)
        assert nodes["L0/smoother"].flops == pytest.approx(2e9)

    def test_schema_checked(self):
        with pytest.raises(ValueError, match="trace diff needs"):
            trace_nodes({"schema": "nope", "spans": []})

    def test_regression_detected_and_sorted(self):
        diff = diff_trace_documents(*self._pair())
        assert diff.rows[0].key == "L0/smoother"  # biggest mover first
        assert diff.rows[0].verdict == "regression"
        assert diff.rows[0].ratio == pytest.approx(1.0)
        assert diff.exit_code == 1
        assert "einsum" in diff.render()

    def test_tolerance_band_holds(self):
        a, b = self._pair(slow=1.1)  # +10% < default 25% tolerance
        diff = diff_trace_documents(a, b)
        assert diff.regressions == []
        assert diff.exit_code == 0

    def test_noise_floor_never_gates(self):
        a = doc_of(span("tiny", 0.0, 10e-6))
        b = doc_of(span("tiny", 0.0, 40e-6))  # 4x but under 50us floor
        diff = diff_trace_documents(a, b)
        assert diff.rows[0].verdict == "ok"

    def test_added_and_removed_nodes(self):
        a = doc_of(span("mg.solve", 0.0, 1.0))
        b = doc_of(span("mg.setup", 0.0, 1.0))
        verdicts = {r.key: r.verdict
                    for r in diff_trace_documents(a, b).rows}
        assert verdicts == {"L0/mg.solve": "removed", "L0/mg.setup": "added"}

    def test_flops_ratio_flags_algorithm_change(self):
        a = doc_of(span("smoother", 0.0, 1.0, attrs={"flops": 1e9}))
        b = doc_of(span("smoother", 0.0, 1.0, attrs={"flops": 2e9}))
        row = diff_trace_documents(a, b).rows[0]
        assert row.flops_ratio == pytest.approx(1.0)
        assert "flops +100.0%" in row.render()

    def test_cli_json_and_warn_only(self, tmp_path, capsys):
        a, b = self._pair()
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(json.dumps(a))
        pb.write_text(json.dumps(b))
        out = tmp_path / "diff.json"
        rc = trace_diff_main(
            [str(pa), str(pb), "--warn-only", "--json", str(out)]
        )
        assert rc == 0  # warn-only despite the regression
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.trace-diff/v1"
        assert payload["verdict"] == "regression"
        assert "REGRESSED" in capsys.readouterr().out
        assert trace_diff_main([str(pa), str(pb)]) == 1

    def test_cli_bad_input_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = trace_diff_main([str(bad), str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().out


# ----------------------------------------------------------------------
# bench trajectory + trend scan
# ----------------------------------------------------------------------
def trajectory(values, key="mg.solve"):
    return {
        "schema": TRAJECTORY_SCHEMA,
        "suite": "quick",
        "points": [
            {
                "ts": f"2026-08-{i + 1:02d}T00:00:00Z",
                "git_rev": f"rev{i:02d}",
                "backend": "numpy",
                "entry": f"entry{i:02d}",
                "benchmarks": {key: {"median": v, "mad": 0.01 * v}},
            }
            for i, v in enumerate(values)
        ],
    }


class TestTrajectoryLedger:
    def _entry(self, median=1.0):
        return {
            "schema": "repro.bench/v1",
            "meta": {
                "suite": "quick",
                "timestamp": "2026-08-09T00:00:00Z",
                "git": {"rev": "abc123"},
            },
            "host": {"backend": "numpy"},
            "rows": [{"benchmark": "mg.solve", "median": median, "mad": 0.01}],
        }

    def test_point_compaction(self):
        pt = trajectory_point(self._entry())
        assert pt["git_rev"] == "abc123"
        assert pt["backend"] == "numpy"
        assert pt["benchmarks"]["mg.solve"]["median"] == 1.0
        assert len(pt["entry"]) == 12

    def test_append_creates_and_grows(self, tmp_path):
        p1 = append_trajectory_point(self._entry(1.0), tmp_path)
        append_trajectory_point(self._entry(1.1), tmp_path)
        assert p1.name == "BENCH_quick.history.json"
        history = load_trajectory(p1)
        assert history["schema"] == TRAJECTORY_SCHEMA
        assert [pt["benchmarks"]["mg.solve"]["median"]
                for pt in history["points"]] == [1.0, 1.1]

    def test_append_caps_points(self, tmp_path):
        for i in range(7):
            append_trajectory_point(
                self._entry(float(i)), tmp_path, max_points=5
            )
        history = load_trajectory(tmp_path / "BENCH_quick.history.json")
        assert len(history["points"]) == 5
        assert history["points"][0]["benchmarks"]["mg.solve"]["median"] == 2.0

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "h.json"
        bad.write_text(json.dumps({"schema": "other", "points": []}))
        with pytest.raises(ValueError, match="not a"):
            load_trajectory(bad)


class TestTrendScan:
    def test_flat_series_is_ok(self):
        rep = scan_trajectory(trajectory([1.0] * 8))
        assert rep.sufficient
        assert rep.latest["mg.solve"].verdict == "ok"
        assert rep.exit_code == 0

    def test_step_regression_at_latest(self):
        rep = scan_trajectory(trajectory([1.0] * 7 + [1.6]))
        v = rep.latest["mg.solve"]
        assert v.verdict == "regression"
        assert v.ratio == pytest.approx(0.6)
        assert rep.exit_code == 1
        assert "REGRESSED" in rep.render()

    def test_improvement_at_latest(self):
        rep = scan_trajectory(trajectory([1.0] * 7 + [0.5]))
        assert rep.latest["mg.solve"].verdict == "improvement"
        assert rep.exit_code == 0  # improvements never fail CI

    def test_historical_changepoint_annotated_not_gating(self):
        # regression lands mid-series, later points inherit the new level:
        # the landing point is named, the latest verdict stays ok
        rep = scan_trajectory(trajectory([1.0] * 6 + [1.6] * 4))
        assert rep.latest["mg.solve"].verdict == "ok"
        assert rep.exit_code == 0
        assert any(
            v.verdict == "regression" and v.index == 6
            for v in rep.changepoints
        )
        assert "changepoints along the trajectory" in rep.render()

    def test_noise_floor_absorbs_jitter(self):
        # +8% on a quiet series: under both tolerance and the sigma floor
        rep = scan_trajectory(trajectory([1.0] * 7 + [1.08]))
        assert rep.latest["mg.solve"].verdict == "ok"

    def test_insufficient_history(self):
        rep = scan_trajectory(trajectory([1.0, 1.0, 9.0]))
        assert not rep.sufficient
        assert rep.exit_code == 0
        assert "insufficient history" in rep.render()

    def test_schema_checked(self):
        with pytest.raises(ValueError, match="perf trend needs"):
            scan_trajectory({"schema": "nope"})

    def test_to_dict(self):
        d = scan_trajectory(trajectory([1.0] * 7 + [1.6])).to_dict()
        assert d["schema"] == "repro.perf-trend/v1"
        assert d["verdict"] == "regression"
        assert d["latest"]["mg.solve"]["zscore"] > 3.0


class TestTrendCLI:
    class Args:
        history = None
        suite = "quick"
        window = 5
        z = 3.0
        tolerance = 0.10
        min_points = 4
        warn_only = False
        json = None

    def test_missing_history_is_ok(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert trend_main(self.Args()) == 0
        assert "no trajectory" in capsys.readouterr().out

    def test_scan_json_and_warn_only(self, tmp_path, capsys):
        hist = tmp_path / "h.json"
        hist.write_text(json.dumps(trajectory([1.0] * 7 + [1.6])))
        args = self.Args()
        args.history = str(hist)
        args.json = str(tmp_path / "trend.json")
        assert trend_main(args) == 1
        payload = json.loads((tmp_path / "trend.json").read_text())
        assert payload["verdict"] == "regression"
        assert "REGRESSED" in capsys.readouterr().out
        args.warn_only = True
        assert trend_main(args) == 0

"""End-to-end observability through the solve service.

The acceptance path of the observability layer: a trace_id minted at
submit() ingress must come back on the result, thread every slog
record, and — when a request times out, a solve fails, or a stall is
detected — land in a ``repro.blackbox/v1`` dump whose span forest
carries the per-iteration convergence events.  Run the group with
``pytest -q -m obs``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import telemetry
from repro.dirac import WilsonCloverOperator
from repro.gauge import disordered_field
from repro.lattice import Lattice
from repro.mg import LevelParams, MGParams
from repro.obs.blackbox import validate_blackbox
from repro.obs.slo import DEFAULT_SLOS, SLOSpec
from repro.serve import ServeConfig, SetupCache, SolveService
from repro.serve.bench import render_table
from repro.solvers.base import SolveResult
from repro.telemetry import TraceContext, activate, new_trace_id

pytestmark = pytest.mark.obs

TOL = 1e-7


@pytest.fixture(scope="module")
def lattice():
    return Lattice((4, 4, 4, 8))


@pytest.fixture(scope="module")
def op(lattice):
    gauge = disordered_field(
        lattice, np.random.default_rng(11), 0.55, smear_steps=1
    )
    return WilsonCloverOperator(gauge, mass=-1.406 + 0.03, c_sw=1.0)


@pytest.fixture(scope="module")
def params():
    return MGParams(
        levels=[LevelParams(block=(2, 2, 2, 4), n_null=6, null_iters=40)],
        outer_tol=TOL,
    )


@pytest.fixture(scope="module")
def cache():
    # one shared setup across every service in the module: the adaptive
    # setup runs once, each test only pays its solves
    return SetupCache()


@pytest.fixture(scope="module")
def sources(lattice):
    rng = np.random.default_rng(3)
    shape = (3, lattice.volume, 4, 3)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


def make_service(op, params, cache, **cfg_kwargs) -> SolveService:
    cfg = ServeConfig(**{"max_wait_s": 0.05, **cfg_kwargs})
    svc = SolveService(cfg, cache=cache)
    svc.register("wc", op, params, rng=np.random.default_rng(5))
    return svc


def _iteration_events(span: dict) -> list[dict]:
    events = [e for e in span.get("events", []) if e["name"] == "iteration"]
    for child in span.get("children", []):
        events.extend(_iteration_events(child))
    return events


def _wait_for(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not met within timeout")


class TestTracePropagation:
    def test_batched_round_trip_carries_trace_ids(
        self, op, params, cache, sources
    ):
        telemetry.enable()
        telemetry.reset()
        try:
            with make_service(
                op, params, cache, max_batch=4, max_wait_s=0.02
            ) as svc:
                futures = [svc.submit("wc", b) for b in sources]
                results = [f.result() for f in futures]
        finally:
            telemetry.disable()

        trace_ids = [r.telemetry.attrs["trace_id"] for r in results]
        assert all(len(t) == 32 for t in trace_ids)
        assert len(set(trace_ids)) == len(results)  # one trace per request
        # coalesced requests also know the batch they rode in
        head_tid = trace_ids[0]
        for r in results[1:]:
            assert r.telemetry.attrs["batch_trace_id"] == head_tid
        # the batched span tree carries per-iteration convergence events
        # for every system in the batch
        spans = results[0].telemetry.spans
        assert spans and spans[0]["name"] == "mg.batched_solve"
        assert spans[0]["trace_id"] == head_tid
        per_rhs = [
            c for c in spans[0]["children"]
            if c["name"] == "mg.batched_solve.rhs"
        ]
        assert len(per_rhs) == len(results)
        for child in per_rhs:
            events = _iteration_events(child)
            assert events
            assert events[0]["attrs"]["residual"] == 1.0

    def test_callers_active_context_is_inherited(
        self, op, params, cache, sources
    ):
        tid = new_trace_id()
        with make_service(op, params, cache, max_batch=1) as svc:
            with activate(TraceContext(trace_id=tid)):
                future = svc.submit("wc", sources[0])
            res = future.result()
        assert res.telemetry.attrs["trace_id"] == tid


class TestForensicsServe:
    def test_ragged_batches_preserve_per_request_traces(
        self, op, params, cache, lattice
    ):
        # 7 submissions against max_batch=4 coalesce into a full batch
        # and a ragged remainder (4+3); every request keeps its own
        # trace_id and every serve.batch span names all of its riders
        rng = np.random.default_rng(21)
        shape = (7, lattice.volume, 4, 3)
        rhs = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        telemetry.enable()
        telemetry.reset()
        try:
            with make_service(
                op, params, cache, max_batch=4, max_wait_s=0.2
            ) as svc:
                futures = [svc.submit("wc", b) for b in rhs]
                results = [f.result(timeout=60) for f in futures]
            doc = telemetry.trace_document()
        finally:
            telemetry.disable()

        trace_ids = {r.telemetry.attrs["trace_id"] for r in results}
        assert len(trace_ids) == 7
        batches = [s for s in doc["spans"] if s["name"] == "serve.batch"]
        sizes = sorted(s["attrs"]["size"] for s in batches)
        assert sum(sizes) == 7
        assert max(sizes) <= 4 and len(sizes) >= 2  # ragged, not one batch
        riders = {t for s in batches for t in s["attrs"]["trace_ids"]}
        assert riders == trace_ids
        for r in results:
            # batch heads carry their own trace as the batch trace;
            # riders get an explicit batch_trace_id link
            attrs = r.telemetry.attrs
            batch_tid = attrs.get("batch_trace_id", attrs["trace_id"])
            assert batch_tid in trace_ids

    def test_serve_batch_span_carries_shard_label(
        self, op, params, cache, sources
    ):
        from repro.obs.forensics import perfetto_document

        telemetry.enable()
        telemetry.reset()
        try:
            with make_service(
                op, params, cache, max_batch=1, label="node-x"
            ) as svc:
                svc.solve("wc", sources[0])
            doc = telemetry.trace_document()
        finally:
            telemetry.disable()

        batch = next(s for s in doc["spans"] if s["name"] == "serve.batch")
        assert batch["attrs"]["shard"] == "node-x"
        # the label becomes the Perfetto process track
        p = perfetto_document(doc)
        names = {
            e["args"]["name"]
            for e in p["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert "shard node-x" in names

    def test_otlp_export_carries_iteration_events(
        self, op, params, cache, sources
    ):
        from repro.telemetry import otlp_document

        telemetry.enable()
        telemetry.reset()
        try:
            with make_service(op, params, cache, max_batch=1) as svc:
                svc.solve("wc", sources[0])
            doc = telemetry.trace_document()
        finally:
            telemetry.disable()

        otlp = otlp_document(doc)
        spans = otlp["resourceSpans"][0]["scopeSpans"][0]["spans"]
        events = [e for s in spans for e in s.get("events", [])]
        iteration = [e for e in events if e["name"] == "iteration"]
        assert iteration  # per-iteration residual stream survives export
        keys = {a["key"] for a in iteration[0]["attributes"]}
        assert {"severity", "residual"} <= keys
        assert all(int(e["timeUnixNano"]) > 0 for e in iteration)

    def test_perfetto_round_trip_from_service_trace(
        self, op, params, cache, sources, tmp_path
    ):
        import json

        from repro.obs.forensics import write_perfetto

        telemetry.enable()
        telemetry.reset()
        try:
            with make_service(op, params, cache, max_batch=4) as svc:
                svc.solve("wc", sources[0])
            doc = telemetry.trace_document()
        finally:
            telemetry.disable()

        out = write_perfetto(tmp_path / "solve.perfetto.json", doc)
        loaded = json.loads(out.read_text())  # must be valid JSON
        timed = [e for e in loaded["traceEvents"] if e["ph"] in ("X", "i")]
        assert timed
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)  # monotone timeline
        # nesting preserved: serve.batch encloses the solve it dispatched
        x = [e for e in timed if e["ph"] == "X"]
        batch = next(e for e in x if e["name"] == "serve.batch")
        solves = [e for e in x if e["name"].startswith("mg.")]
        assert solves
        for s in solves:
            assert batch["ts"] <= s["ts"]
            assert s["ts"] + s["dur"] <= batch["ts"] + batch["dur"]


class TestBlackboxDumps:
    def test_timeout_produces_matching_dump(
        self, op, params, cache, sources, tmp_path
    ):
        telemetry.enable()
        telemetry.reset()
        tid = new_trace_id()
        try:
            with make_service(
                op,
                params,
                cache,
                max_batch=4,
                max_wait_s=0.02,
                blackbox_dir=str(tmp_path),
            ) as svc:
                # a healthy solve first, so the recorder and tracer hold
                # the history a postmortem should see
                svc.solve("wc", sources[0])
                with activate(TraceContext(trace_id=tid)):
                    future = svc.submit("wc", sources[1], timeout_s=0.0)
                with pytest.raises(TimeoutError):
                    future.result(timeout=10)
                _wait_for(lambda: svc.stats["blackbox_dumps"] >= 1)
                doc = svc.last_blackbox
        finally:
            telemetry.disable()

        validate_blackbox(doc)
        assert doc["reason"] == "timeout"
        # the dump names the timed-out request's trace, and that trace
        # threads the request's own slog lifecycle events
        assert doc["trace_id"] == tid
        kinds = {
            e["kind"] for e in doc["events"] if e.get("trace_id") == tid
        }
        assert {"enqueued", "timeout"} <= kinds
        assert doc["meta"]["timeout_s"] == 0.0
        # the span forest includes the per-iteration convergence events
        # of the preceding solve
        assert any(_iteration_events(root) for root in doc["spans"])
        # and the same dump is on disk for `repro blackbox`
        files = list(tmp_path.glob("blackbox-*timeout*.json"))
        assert len(files) == 1

    def test_solver_failure_produces_dump(self, op, params, cache, sources):
        with make_service(
            op, params, cache, max_batch=1, allow_batching=False
        ) as svc:
            def boom(*args, **kwargs):
                raise RuntimeError("injected solver failure")

            svc._ops["wc"].solver.solve = boom
            future = svc.submit("wc", sources[0])
            with pytest.raises(RuntimeError, match="injected"):
                future.result(timeout=10)
            _wait_for(lambda: svc.stats["blackbox_dumps"] >= 1)
            doc = svc.last_blackbox
        validate_blackbox(doc)
        assert doc["reason"] == "failure"
        assert "injected solver failure" in doc["meta"]["error"]
        assert svc.stats["failed"] == 1

    def test_stall_detection_dumps_and_counts(self, op, params, cache):
        from repro.serve.service import _Request

        with make_service(op, params, cache, max_batch=1) as svc:
            req = _Request(
                op_name="wc",
                rhs=np.zeros(1),
                tol=TOL,
                timeout_s=None,
                id=77,
                trace_id="a" * 32,
            )
            stalled = SolveResult(
                x=np.zeros(1),
                converged=False,
                iterations=12,
                final_residual=0.5,
                residual_history=[1.0, 0.5] + [0.5] * 10,
            )
            svc._check_stall(req, stalled)
            healthy = SolveResult(
                x=np.zeros(1),
                converged=True,
                iterations=5,
                final_residual=1e-8,
                residual_history=[10.0**-i for i in range(9)],
            )
            svc._check_stall(req, healthy)  # must not double-count
        assert svc.stats["stalls_detected"] == 1
        assert svc.stats["blackbox_dumps"] == 1
        doc = svc.last_blackbox
        assert doc["reason"] == "stall"
        assert doc["trace_id"] == "a" * 32
        assert doc["meta"]["verdicts"][0]["kind"] == "stall"


class TestServeSLOs:
    def test_monitor_fed_by_completions_and_timeouts(
        self, op, params, cache, sources
    ):
        specs = (
            SLOSpec("latency-p99", "latency_p99", threshold=60.0),
            SLOSpec("timeouts", "timeout_rate", threshold=0.4),
        )
        with make_service(
            op, params, cache, max_batch=4, max_wait_s=0.02, slo_specs=specs
        ) as svc:
            svc.solve("wc", sources[0])
            future = svc.submit("wc", sources[1], timeout_s=0.0)
            with pytest.raises(TimeoutError):
                future.result(timeout=10)
            _wait_for(lambda: svc.stats["timeouts"] >= 1)
            statuses = {s.spec.name: s for s in svc.slo_monitor.evaluate()}
        assert statuses["latency-p99"].n == 2
        assert statuses["timeouts"].bad == 1
        assert statuses["timeouts"].measured == pytest.approx(0.5)
        assert not statuses["timeouts"].compliant

    def test_bench_table_renders_slo_section(self):
        # pure renderer: a synthetic serve-bench document with SLO rows
        status = {
            "spec": {
                "name": "latency-p99",
                "objective": "latency_p99",
                "threshold": 30.0,
                "window_s": 600.0,
            },
            "n": 8,
            "bad": 0,
            "measured": 1.5,
            "compliant": True,
            "burn_rate": 0.0,
        }
        doc = {
            "schema": "repro.serve-bench/v1",
            "dataset": "test",
            "n_requests": 8,
            "tol": 1e-7,
            "rows": [
                {
                    "max_batch": 1,
                    "throughput_rps": 2.0,
                    "p50_s": 0.5,
                    "p95_s": 0.8,
                    "p99_s": 0.9,
                    "max_dev_vs_batch1": 0.0,
                    "slo": [status],
                    "slo_compliant": True,
                }
            ],
            "speedups_vs_batch1": {"1": 1.0},
            "setup_cache": {"hits": 0, "misses": 1, "evictions": 0},
            "slo_compliant": True,
        }
        text = render_table(doc)
        assert "SLO compliance" in text and "PASS" in text
        assert "latency-p99" in text

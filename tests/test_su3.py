"""SU(3) group/algebra utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gauge import (
    dagger,
    gell_mann,
    project_su3,
    random_hermitian_traceless,
    random_su3,
    su3_exp,
    traceless_antihermitian,
)

EYE = np.eye(3)


def _unitarity(m):
    return np.abs(m @ dagger(m) - EYE).max()


class TestGellMann:
    def test_count(self):
        assert gell_mann().shape == (8, 3, 3)

    def test_hermitian(self):
        lam = gell_mann()
        assert np.abs(lam - dagger(lam)).max() < 1e-15

    def test_traceless(self):
        tr = np.einsum("aii->a", gell_mann())
        assert np.abs(tr).max() < 1e-15

    def test_orthogonality(self):
        lam = gell_mann()
        gram = np.einsum("aij,bji->ab", lam, lam)
        np.testing.assert_allclose(gram, 2 * np.eye(8), atol=1e-14)


class TestRandomSU3:
    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_special_unitary(self, seed):
        u = random_su3(np.random.default_rng(seed), 10)
        assert _unitarity(u) < 1e-13
        assert np.abs(np.linalg.det(u) - 1).max() < 1e-13

    def test_haar_trace_statistics(self):
        # for Haar SU(3), E[tr U] = 0
        u = random_su3(np.random.default_rng(0), 4000)
        mean_tr = np.einsum("nii->n", u).mean()
        assert abs(mean_tr) < 0.1


class TestExpMap:
    def test_unitary_output(self):
        h = random_hermitian_traceless(np.random.default_rng(1), 20, scale=1.3)
        u = su3_exp(h)
        assert _unitarity(u) < 1e-13
        assert np.abs(np.linalg.det(u) - 1).max() < 1e-12

    def test_zero_gives_identity(self):
        u = su3_exp(np.zeros((3, 3, 3)))
        np.testing.assert_allclose(u, np.broadcast_to(EYE, (3, 3, 3)), atol=1e-15)

    def test_additive_in_commuting_case(self):
        h = random_hermitian_traceless(np.random.default_rng(2), 1)
        u1 = su3_exp(h) @ su3_exp(h)
        u2 = su3_exp(2 * h)
        np.testing.assert_allclose(u1, u2, atol=1e-12)

    def test_inverse_is_dagger(self):
        h = random_hermitian_traceless(np.random.default_rng(3), 5)
        u = su3_exp(h)
        np.testing.assert_allclose(su3_exp(-h), dagger(u), atol=1e-13)


class TestProjection:
    def test_projects_back_to_su3(self):
        rng = np.random.default_rng(4)
        u = random_su3(rng, 10)
        noisy = u + 0.05 * (
            rng.standard_normal((10, 3, 3)) + 1j * rng.standard_normal((10, 3, 3))
        )
        p = project_su3(noisy)
        assert _unitarity(p) < 1e-13
        assert np.abs(np.linalg.det(p) - 1).max() < 1e-12
        # small perturbation: projection lands near the original
        assert np.abs(p - u).max() < 0.2

    def test_fixed_point_on_su3(self):
        u = random_su3(np.random.default_rng(5), 8)
        np.testing.assert_allclose(project_su3(u), u, atol=1e-12)


class TestTracelessAntihermitian:
    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_properties(self, seed):
        rng = np.random.default_rng(seed)
        m = rng.standard_normal((6, 3, 3)) + 1j * rng.standard_normal((6, 3, 3))
        a = traceless_antihermitian(m)
        assert np.abs(a + dagger(a)).max() < 1e-13
        assert np.abs(np.einsum("nii->n", a)).max() < 1e-13

    def test_idempotent(self):
        rng = np.random.default_rng(6)
        m = rng.standard_normal((4, 3, 3)) + 1j * rng.standard_normal((4, 3, 3))
        a = traceless_antihermitian(m)
        np.testing.assert_allclose(traceless_antihermitian(a), a, atol=1e-14)

    def test_kills_hermitian_part(self):
        h = random_hermitian_traceless(np.random.default_rng(7), 4)
        assert np.abs(traceless_antihermitian(h)).max() < 1e-13

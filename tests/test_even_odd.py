"""Red-black (Schur complement) preconditioning, for fine and coarse operators."""

import numpy as np
import pytest

from repro.coarse import coarsen_operator
from repro.dirac import SchurOperator, WilsonCloverOperator
from repro.lattice import Blocking, Lattice
from repro.transfer import Transfer
from tests.conftest import random_spinor


@pytest.fixture(scope="module")
def schur2(wilson2):
    return SchurOperator(wilson2, parity=0)


class TestLifting:
    def test_lift_restrict_roundtrip(self, schur2, lat2):
        half = random_spinor(Lattice((2, 2, 2, 2)), seed=1)[: lat2.half_volume]
        assert np.array_equal(schur2.restrict(schur2.lift(half)), half)

    def test_lift_zero_pads_other_parity(self, schur2, lat2):
        half = random_spinor(lat2, seed=2)[: lat2.half_volume]
        full = schur2.lift(half)
        assert np.abs(full[lat2.odd_sites]).max() == 0.0

    def test_bad_parity_rejected(self, wilson2):
        with pytest.raises(ValueError):
            SchurOperator(wilson2, parity=2)


class TestSchurSolveEquivalence:
    def test_matches_direct_solve(self, wilson2, schur2, lat2):
        rng = np.random.default_rng(3)
        b = random_spinor(lat2, seed=3)
        dense = wilson2.to_dense()
        x_direct = np.linalg.solve(dense, b.reshape(-1)).reshape(lat2.volume, 4, 3)
        xe = np.linalg.solve(
            schur2.to_dense(), schur2.prepare_source(b).reshape(-1)
        ).reshape(schur2.half_volume, 4, 3)
        x_schur = schur2.reconstruct(xe, b)
        np.testing.assert_allclose(x_schur, x_direct, atol=1e-11)

    def test_odd_parity_variant(self, wilson2, lat2):
        schur = SchurOperator(wilson2, parity=1)
        b = random_spinor(lat2, seed=4)
        dense = wilson2.to_dense()
        x_direct = np.linalg.solve(dense, b.reshape(-1)).reshape(lat2.volume, 4, 3)
        xo = np.linalg.solve(
            schur.to_dense(), schur.prepare_source(b).reshape(-1)
        ).reshape(schur.half_volume, 4, 3)
        x_schur = schur.reconstruct(xo, b)
        np.testing.assert_allclose(x_schur, x_direct, atol=1e-11)

    def test_reconstruction_satisfies_full_system(self, wilson448, lat448):
        from repro.solvers import bicgstab

        schur = SchurOperator(wilson448, parity=0)
        b = random_spinor(lat448, seed=5)
        res = bicgstab(schur, schur.prepare_source(b), tol=1e-10, maxiter=2000)
        assert res.converged
        x = schur.reconstruct(res.x, b)
        resid = np.linalg.norm((b - wilson448.apply(x)).ravel())
        assert resid < 1e-8 * np.linalg.norm(b.ravel())


class TestSchurStructure:
    def test_schur_gamma5_hermiticity(self, schur2, lat2):
        # gamma5 M_hat gamma5 = M_hat^dag holds on the half lattice
        hv = schur2.half_volume
        v = random_spinor(lat2, seed=6)[:hv]
        w = random_spinor(lat2, seed=7)[:hv]
        g5 = schur2.gamma5_diag()[None, :, None]
        lhs = np.vdot(w.ravel(), (g5 * schur2.apply(g5 * v)).ravel())
        rhs = np.conj(np.vdot(v.ravel(), schur2.apply(w).ravel()))
        assert abs(lhs - rhs) < 1e-10 * abs(lhs)

    def test_better_conditioned_than_full(self, wilson2, schur2):
        full = wilson2.to_dense()
        red = schur2.to_dense()
        cond_full = np.linalg.cond(full)
        cond_red = np.linalg.cond(red)
        assert cond_red < cond_full

    def test_matvec_alias(self, schur2, lat2):
        v = random_spinor(lat2, seed=8)[: schur2.half_volume]
        assert np.array_equal(schur2.matvec(v), schur2.apply(v))


class TestCoarseSchur:
    def test_coarse_schur_matches_direct(self, wilson44, lat44):
        rng = np.random.default_rng(9)
        blocking = Blocking(lat44, (2, 2, 2, 2))
        nulls = [random_spinor(lat44, seed=100 + k) for k in range(4)]
        transfer = Transfer(blocking, nulls)
        mc = coarsen_operator(wilson44, transfer)
        schur = SchurOperator(mc, parity=0)
        b = rng.standard_normal((mc.lattice.volume, 2, 4)) + 1j * rng.standard_normal(
            (mc.lattice.volume, 2, 4)
        )
        dense = mc.to_dense()
        x_direct = np.linalg.solve(dense, b.reshape(-1)).reshape(b.shape)
        xe = np.linalg.solve(
            schur.to_dense(), schur.prepare_source(b).reshape(-1)
        ).reshape(schur.half_volume, 2, 4)
        np.testing.assert_allclose(schur.reconstruct(xe, b), x_direct, atol=1e-10)

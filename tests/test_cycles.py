"""Multigrid cycle types: K (paper), V, W."""

import numpy as np
import pytest

from repro.dirac import WilsonCloverOperator
from repro.gauge import disordered_field
from repro.lattice import Lattice
from repro.mg import LevelParams, MGParams, MultigridSolver
from repro.solvers import norm
from tests.conftest import random_spinor


@pytest.fixture(scope="module")
def op3():
    lat = Lattice((4, 4, 4, 8))
    u = disordered_field(lat, np.random.default_rng(11), 0.55, smear_steps=1)
    return WilsonCloverOperator(u, mass=-1.406 + 0.03, c_sw=1.0)


def make_solver(op, cycle):
    params = MGParams(
        levels=[
            LevelParams(block=(2, 2, 2, 2), n_null=6, null_iters=40),
            LevelParams(block=(1, 1, 1, 2), n_null=4, null_iters=30),
        ],
        outer_tol=1e-8,
        cycle_type=cycle,
    )
    return MultigridSolver(op, params, np.random.default_rng(5))


class TestCycleTypes:
    @pytest.mark.parametrize("cycle", ["K", "V", "W"])
    def test_all_cycles_converge(self, op3, cycle):
        mgs = make_solver(op3, cycle)
        b = random_spinor(op3.lattice, seed=700)
        res = mgs.solve(b)
        assert res.converged, cycle
        assert norm(b - op3.apply(res.x)) / norm(b) < 2e-8

    def test_bad_cycle_rejected(self):
        with pytest.raises(ValueError):
            MGParams(levels=[], cycle_type="X")

    def test_k_cycle_needs_fewest_outer_iterations(self, op3):
        b = random_spinor(op3.lattice, seed=701)
        iters = {}
        for cycle in ("K", "V"):
            iters[cycle] = make_solver(op3, cycle).solve(b).iterations
        # the K-cycle's inner Krylov acceleration is at least as strong
        assert iters["K"] <= iters["V"]

    def test_w_cycle_at_least_as_strong_as_v(self, op3):
        b = random_spinor(op3.lattice, seed=702)
        v = make_solver(op3, "V").solve(b).iterations
        w = make_solver(op3, "W").solve(b).iterations
        assert w <= v

    def test_v_cycle_does_less_coarse_work_per_iteration(self, op3):
        b = random_spinor(op3.lattice, seed=703)
        res_k = make_solver(op3, "K").solve(b)
        res_v = make_solver(op3, "V").solve(b)
        per_iter_k = res_k.extra["level_stats"][1]["op_applies"] / res_k.iterations
        per_iter_v = res_v.extra["level_stats"][1]["op_applies"] / res_v.iterations
        assert per_iter_v < per_iter_k

"""Adjoint and normal operators (CGNE/CGNR substrate)."""

import numpy as np

from repro.dirac import AdjointOperator, NormalOperator
from tests.conftest import random_spinor


class TestAdjoint:
    def test_is_true_adjoint(self, wilson44, lat44):
        adj = AdjointOperator(wilson44)
        v = random_spinor(lat44, seed=40)
        w = random_spinor(lat44, seed=41)
        lhs = np.vdot(w.ravel(), wilson44.apply(v).ravel())
        rhs = np.vdot(adj.apply(w).ravel(), v.ravel())
        assert abs(lhs - rhs) < 1e-9 * abs(lhs)

    def test_double_adjoint_is_identity(self, wilson44, lat44):
        adj2 = AdjointOperator(AdjointOperator(wilson44))
        v = random_spinor(lat44, seed=42)
        np.testing.assert_allclose(adj2.apply(v), wilson44.apply(v), atol=1e-12)


class TestNormal:
    def test_hermitian(self, wilson44, lat44):
        n = NormalOperator(wilson44)
        v = random_spinor(lat44, seed=43)
        w = random_spinor(lat44, seed=44)
        lhs = np.vdot(w.ravel(), n.apply(v).ravel())
        rhs = np.conj(np.vdot(v.ravel(), n.apply(w).ravel()))
        assert abs(lhs - rhs) < 1e-9 * abs(lhs)

    def test_positive_definite(self, wilson44, lat44):
        n = NormalOperator(wilson44)
        for seed in (45, 46, 47):
            v = random_spinor(lat44, seed=seed)
            q = np.vdot(v.ravel(), n.apply(v).ravel())
            assert q.real > 0
            assert abs(q.imag) < 1e-9 * q.real

    def test_equals_mdag_m(self, wilson44, lat44):
        n = NormalOperator(wilson44)
        adj = AdjointOperator(wilson44)
        v = random_spinor(lat44, seed=48)
        np.testing.assert_allclose(
            n.apply(v), adj.apply(wilson44.apply(v)), atol=1e-12
        )

"""Golden convergence regression for the canonical Aniso40-scaled solve.

The committed record in ``tests/golden/`` freezes the convergence
signature (outer iterations, per-level GCR work, final residual) of the
deterministic solve the ``aniso40_solve`` fixture runs.  A perf refactor
that changes these numbers beyond the comparator's slack fails here —
regenerate deliberately with ``pytest --regen-golden`` and commit the
diff if the change is intended.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.verify.golden import (
    SCHEMA,
    compare_golden,
    golden_record,
    load_golden,
    write_golden,
)

pytestmark = pytest.mark.verify

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "aniso40-scaled.json"
TOL = 5e-6


@pytest.fixture()
def fresh_record(aniso40_solve):
    ds, _solver, result = aniso40_solve
    return golden_record(result, subject=ds.label, tol=TOL)


def test_golden_record_matches(fresh_record, request):
    if request.config.getoption("--regen-golden"):
        path = write_golden(GOLDEN_PATH, fresh_record)
        pytest.skip(f"golden record regenerated at {path}")
    assert GOLDEN_PATH.exists(), (
        f"no golden record at {GOLDEN_PATH}; create it with "
        f"`pytest {__file__} --regen-golden`"
    )
    golden = load_golden(GOLDEN_PATH)
    problems = compare_golden(fresh_record, golden)
    assert not problems, "convergence drifted from golden record:\n- " + "\n- ".join(
        problems
    )


def test_record_shape(fresh_record):
    assert fresh_record["schema"] == SCHEMA
    assert fresh_record["converged"] is True
    assert set(fresh_record["per_level_gcr_iters"]) == {"0", "1", "2"}
    assert fresh_record["final_residual"] <= TOL


class TestComparator:
    """The comparator itself must both accept slack and catch drift."""

    BASE = {
        "schema": SCHEMA,
        "subject": "x",
        "tol": 1e-6,
        "converged": True,
        "iterations": 10,
        "final_residual": 5e-7,
        "per_level_gcr_iters": {"0": 10, "1": 12, "2": 40},
    }

    def test_identical_records_match(self):
        assert compare_golden(dict(self.BASE), dict(self.BASE)) == []

    def test_small_drift_tolerated(self):
        moved = dict(self.BASE, iterations=11, final_residual=9e-7)
        moved["per_level_gcr_iters"] = {"0": 11, "1": 11, "2": 42}
        assert compare_golden(moved, self.BASE) == []

    def test_iteration_blowup_caught(self):
        worse = dict(self.BASE, iterations=20)
        assert any("iterations" in p for p in compare_golden(worse, self.BASE))

    def test_convergence_loss_caught(self):
        worse = dict(self.BASE, converged=False, final_residual=1e-3)
        problems = compare_golden(worse, self.BASE)
        assert any("converged" in p for p in problems)
        assert any("residual" in p for p in problems)

    def test_level_structure_change_caught(self):
        worse = dict(self.BASE, per_level_gcr_iters={"0": 10, "1": 12})
        assert any("levels" in p for p in compare_golden(worse, self.BASE))

"""Property-based solver *contracts*.

``test_solvers_properties.py`` checks that the Krylov solvers find the
right answer; this file checks that they tell the truth about how they
found it: a converged result actually meets the requested tolerance
when the residual is recomputed from scratch, the reported residual
history is consistent with the returned iterate, and iteration counts
respect the caps.  These are the guarantees the golden-regression and
verify layers build on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.solvers import (
    batched_gcr,
    bicgstab,
    block_cg,
    block_gcr,
    cg,
    gcr,
    norm,
)
from strategies import dense_systems

pytestmark = pytest.mark.verify

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TOL = 1e-8


def check_contract(op, b, res, tol):
    """The truthfulness contract every SolveResult must honour."""
    true_res = norm(b - op.apply(res.x)) / norm(b)
    # the reported residual describes the returned iterate (up to the
    # roundoff drift between recursive and recomputed residuals)
    assert true_res <= 10.0 * max(tol, res.final_residual)
    if res.converged:
        assert true_res <= 10.0 * tol
    # history bookkeeping: one entry per iteration plus the initial
    # residual, ending at the reported final value
    assert len(res.residual_history) == res.iterations + 1
    assert res.residual_history[-1] == res.final_residual
    assert res.final_residual >= 0.0
    assert res.matvecs >= res.iterations >= 0


class TestCGContract:
    @given(dense_systems(kind="spd"))
    @settings(**SETTINGS)
    def test_cg_truthful(self, sys_):
        op, b = sys_
        res = cg(op, b, tol=TOL, maxiter=2000)
        assert res.converged
        assert res.iterations <= 2000
        check_contract(op, b, res, TOL)

    @given(dense_systems(kind="spd"))
    @settings(**SETTINGS)
    def test_cg_honours_maxiter(self, sys_):
        op, b = sys_
        res = cg(op, b, tol=1e-300, maxiter=3)
        assert not res.converged
        assert res.iterations == 3
        check_contract(op, b, res, 1.0)  # no tolerance promise when unconverged


class TestGCRContract:
    @given(dense_systems(kind="hermitian_indefinite"))
    @settings(**SETTINGS)
    def test_gcr_truthful_on_indefinite(self, sys_):
        op, b = sys_
        # full-subspace GCR: indefinite hermitian systems defeat
        # short-recurrence methods but not minimal-residual subspaces
        res = gcr(op, b, tol=TOL, maxiter=2000, nkrylov=op.nc)
        assert res.converged
        check_contract(op, b, res, TOL)

    @given(dense_systems(kind="general"))
    @settings(**SETTINGS)
    def test_gcr_truthful_restarted(self, sys_):
        op, b = sys_
        res = gcr(op, b, tol=TOL, maxiter=2000, nkrylov=8)
        assert res.converged
        check_contract(op, b, res, TOL)


class TestBiCGStabContract:
    @given(dense_systems(kind="general"))
    @settings(**SETTINGS)
    def test_bicgstab_truthful(self, sys_):
        op, b = sys_
        res = bicgstab(op, b, tol=TOL, maxiter=4000)
        assert res.converged
        check_contract(op, b, res, TOL)

    @given(dense_systems(kind="general"))
    @settings(**SETTINGS)
    def test_zero_rhs_is_trivially_solved(self, sys_):
        op, _b = sys_
        b = np.zeros(op.nc, dtype=complex)
        for solver in (cg, gcr, bicgstab):
            res = solver(op, b, tol=TOL)
            assert res.converged
            assert res.iterations == 0
            assert norm(res.x) == 0.0


# ----------------------------------------------------------------------
# multi-RHS convergence masking
# ----------------------------------------------------------------------
def _rhs_stack(op, k: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    n = op.nc
    # spread the column scales so systems cross tolerance at different
    # iterations — the masking has to actually engage
    scales = 10.0 ** rng.uniform(-2, 2, size=k)
    bs = rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))
    return scales[:, None] * bs


def check_masking_contract(op, bs, results, tol):
    """Once a system crosses tolerance it must never regress above it.

    The batched/block solvers keep iterating the shared space for the
    stragglers; masking (``alpha[:, ~active] = 0``) freezes converged
    columns, so their recorded history stays at-or-below tolerance from
    the first crossing on, and the returned iterate truly solves the
    system.
    """
    for res, b in zip(results, bs):
        assert res.converged
        hist = np.asarray(res.residual_history)
        crossed = np.flatnonzero(hist <= tol)
        assert crossed.size > 0
        first = crossed[0]
        assert np.all(hist[first:] <= tol), (
            f"converged system regressed above tol: {hist[first:]}"
        )
        assert norm(b - op.apply(res.x)) / norm(b) <= 10.0 * tol


class TestConvergenceMasking:
    pytestmark = pytest.mark.mrhs

    @given(sys_=dense_systems(kind="general"), seed=st.integers(0, 2**31))
    @settings(**SETTINGS)
    def test_batched_gcr_masks_converged(self, sys_, seed):
        op, _b = sys_
        bs = _rhs_stack(op, 4, seed)
        results = batched_gcr(op, bs, tol=TOL, maxiter=2000)
        check_masking_contract(op, bs, results, TOL)

    @given(sys_=dense_systems(kind="general"), seed=st.integers(0, 2**31))
    @settings(**SETTINGS)
    def test_block_gcr_masks_converged(self, sys_, seed):
        op, _b = sys_
        bs = _rhs_stack(op, 4, seed)
        results = block_gcr(op, bs, tol=TOL, maxiter=2000)
        check_masking_contract(op, bs, results, TOL)

    @given(sys_=dense_systems(kind="spd"), seed=st.integers(0, 2**31))
    @settings(**SETTINGS)
    def test_block_cg_masks_converged(self, sys_, seed):
        op, _b = sys_
        bs = _rhs_stack(op, 4, seed)
        results = block_cg(op, bs, tol=TOL, maxiter=2000)
        check_masking_contract(op, bs, results, TOL)

    @given(dense_systems(kind="general"))
    @settings(**SETTINGS)
    def test_histories_cover_shared_iterations(self, sys_):
        """Every system's history spans the full shared-space run."""
        op, _b = sys_
        bs = _rhs_stack(op, 3, 17)
        results = block_gcr(op, bs, tol=TOL, maxiter=2000)
        lengths = {len(r.residual_history) for r in results}
        assert len(lengths) == 1  # frozen systems repeat their last value

"""Mixed-precision solving with reliable updates."""

import numpy as np
import pytest

from repro.dirac import SchurOperator
from repro.precision import Precision
from repro.solvers import PrecisionOperator, bicgstab, mixed_precision_solve, norm
from tests.conftest import random_spinor


class TestPrecisionOperator:
    def test_double_passthrough(self, wilson44, lat44):
        v = random_spinor(lat44, seed=90)
        p = PrecisionOperator(wilson44, Precision.DOUBLE)
        assert np.array_equal(p.apply(v), wilson44.apply(v))

    def test_half_perturbs(self, wilson44, lat44):
        v = random_spinor(lat44, seed=91)
        p = PrecisionOperator(wilson44, Precision.HALF)
        exact = wilson44.apply(v)
        rounded = p.apply(v)
        rel = norm(exact - rounded) / norm(exact)
        assert 1e-8 < rel < 1e-2

    def test_single_tighter_than_half(self, wilson44, lat44):
        v = random_spinor(lat44, seed=92)
        exact = wilson44.apply(v)
        e_single = norm(PrecisionOperator(wilson44, Precision.SINGLE).apply(v) - exact)
        e_half = norm(PrecisionOperator(wilson44, Precision.HALF).apply(v) - exact)
        assert e_single < e_half


class TestMixedPrecisionSolve:
    def test_half_inner_reaches_double_accuracy(self, wilson448, lat448):
        # the headline claim: half-precision iterations, no accuracy loss
        schur = SchurOperator(wilson448, 0)
        b = random_spinor(lat448, seed=93)
        bs = schur.prepare_source(b)
        res = mixed_precision_solve(
            schur,
            bs,
            bicgstab,
            tol=1e-10,
            inner_precision=Precision.HALF,
            inner_kwargs={"maxiter": 400},
        )
        assert res.converged
        assert norm(bs - schur.apply(res.x)) / norm(bs) < 1e-10

    def test_beats_naive_half_solve(self, wilson448, lat448):
        # a pure half-precision solver stalls well above 1e-10
        schur = SchurOperator(wilson448, 0)
        b = random_spinor(lat448, seed=94)
        bs = schur.prepare_source(b)
        naive = bicgstab(
            PrecisionOperator(schur, Precision.HALF), bs, tol=1e-10, maxiter=800
        )
        true_rel = norm(bs - schur.apply(naive.x)) / norm(bs)
        assert true_rel > 1e-9  # stalled
        mixed = mixed_precision_solve(
            schur, bs, bicgstab, tol=1e-10,
            inner_precision=Precision.HALF, inner_kwargs={"maxiter": 400},
        )
        assert norm(bs - schur.apply(mixed.x)) / norm(bs) < 1e-10

    def test_single_inner(self, wilson44, lat44):
        b = random_spinor(lat44, seed=95)
        res = mixed_precision_solve(
            wilson44, b, bicgstab, tol=1e-12,
            inner_precision=Precision.SINGLE, inner_kwargs={"maxiter": 300},
        )
        assert res.converged

    def test_zero_rhs(self, wilson44, lat44):
        res = mixed_precision_solve(
            wilson44,
            np.zeros((lat44.volume, 4, 3), dtype=complex),
            bicgstab,
        )
        assert res.converged

    def test_outer_count_recorded(self, wilson44, lat44):
        b = random_spinor(lat44, seed=96)
        res = mixed_precision_solve(
            wilson44, b, bicgstab, tol=1e-10,
            inner_precision=Precision.HALF, inner_kwargs={"maxiter": 200},
        )
        assert res.extra["outer"] >= 2  # half cannot do 1e-10 in one cycle

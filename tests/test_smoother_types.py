"""Multigrid smoother selection: schur-mr (paper), chebyshev, schwarz."""

import numpy as np
import pytest

from repro.dirac import WilsonCloverOperator
from repro.gauge import disordered_field
from repro.lattice import Lattice
from repro.mg import LevelParams, MGParams, MultigridSolver
from repro.solvers import norm
from tests.conftest import random_spinor


@pytest.fixture(scope="module")
def problem():
    lat = Lattice((4, 4, 4, 8))
    u = disordered_field(lat, np.random.default_rng(11), 0.55, smear_steps=1)
    op = WilsonCloverOperator(u, mass=-1.406 + 0.03, c_sw=1.0)
    return op, random_spinor(lat, seed=77)


def solve_with(op, b, smoother_type, **extra):
    params = MGParams(
        levels=[LevelParams(block=(2, 2, 2, 4), n_null=8, null_iters=50)],
        outer_tol=1e-8,
        smoother_type=smoother_type,
        **extra,
    )
    mgs = MultigridSolver(op, params, np.random.default_rng(5))
    return mgs.solve(b)


class TestSmootherTypes:
    @pytest.mark.parametrize(
        "stype,extra",
        [
            ("schur-mr", {}),
            ("chebyshev", {}),
            ("schwarz", {"schwarz_grid": (1, 1, 2, 2)}),
        ],
    )
    def test_all_types_converge(self, problem, stype, extra):
        op, b = problem
        res = solve_with(op, b, stype, **extra)
        assert res.converged, stype
        assert norm(b - op.apply(res.x)) / norm(b) < 2e-8

    def test_paper_smoother_is_strongest(self, problem):
        op, b = problem
        iters = {
            stype: solve_with(op, b, stype, **extra).iterations
            for stype, extra in [
                ("schur-mr", {}),
                ("schwarz", {"schwarz_grid": (1, 1, 2, 2)}),
            ]
        }
        # cutting couplings can only weaken the smoother
        assert iters["schur-mr"] <= iters["schwarz"]

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            MGParams(levels=[], smoother_type="jacobi")

    def test_schwarz_requires_grid(self):
        with pytest.raises(ValueError):
            MGParams(levels=[], smoother_type="schwarz")

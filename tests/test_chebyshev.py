"""Chebyshev polynomial smoother."""

import numpy as np
import pytest

from repro.solvers import gcr, norm
from repro.solvers.chebyshev import ChebyshevSmoother, estimate_lambda_max
from tests.conftest import random_spinor


@pytest.fixture(scope="module")
def smoother(wilson448):
    return ChebyshevSmoother(wilson448, degree=4, rng=np.random.default_rng(0))


class TestSpectralEstimate:
    def test_lambda_max_bounds_spectrum(self, wilson448, lat448, smoother):
        # Rayleigh quotients of the normal operator must sit below it
        from repro.dirac import NormalOperator

        nop = NormalOperator(wilson448)
        for seed in (1, 2, 3):
            v = random_spinor(lat448, seed=seed)
            ray = np.real(np.vdot(v.ravel(), nop.apply(v).ravel())) / np.real(
                np.vdot(v.ravel(), v.ravel())
            )
            assert ray < smoother.lambda_max

    def test_estimate_close_to_power_limit(self, wilson448, lat448):
        from repro.dirac import NormalOperator

        class _N:
            def __init__(self, op):
                self.op = op

            def apply(self, v):
                return self.op.apply(v)

        nop = _N(NormalOperator(wilson448))
        a = estimate_lambda_max(nop, (lat448.volume, 4, 3), np.random.default_rng(4))
        b = estimate_lambda_max(nop, (lat448.volume, 4, 3), np.random.default_rng(5))
        assert a == pytest.approx(b, rel=0.1)


class TestSmoothing:
    def test_reduces_residual(self, wilson448, lat448, smoother):
        r = random_spinor(lat448, seed=10)
        z = smoother.apply(r)
        assert norm(r - wilson448.apply(z)) < norm(r)

    def test_higher_degree_smooths_more(self, wilson448, lat448):
        r = random_spinor(lat448, seed=11)
        resids = []
        for degree in (2, 6):
            s = ChebyshevSmoother(wilson448, degree=degree, rng=np.random.default_rng(0))
            z = s.apply(r)
            resids.append(norm(r - wilson448.apply(z)))
        assert resids[1] < resids[0]

    def test_accelerates_gcr(self, wilson448, lat448, smoother):
        b = random_spinor(lat448, seed=12)
        plain = gcr(wilson448, b, tol=1e-8, maxiter=3000)
        pre = gcr(wilson448, b, tol=1e-8, maxiter=3000, preconditioner=smoother)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_invalid_parameters(self, wilson448):
        with pytest.raises(ValueError):
            ChebyshevSmoother(wilson448, degree=0)
        with pytest.raises(ValueError):
            ChebyshevSmoother(wilson448, degree=2, theta=0.5)

    def test_apply_is_linear(self, wilson448, lat448, smoother):
        # a fixed polynomial is a *linear* preconditioner (unlike MR),
        # so it is safe even inside non-flexible outer solvers
        a = random_spinor(lat448, seed=13)
        b = random_spinor(lat448, seed=14)
        lhs = smoother.apply(2.0 * a + 1j * b)
        rhs = 2.0 * smoother.apply(a) + 1j * smoother.apply(b)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

"""Hypercubic aggregation geometry."""

import numpy as np
import pytest

from repro.lattice import Blocking, Lattice


class TestConstruction:
    def test_coarse_dims(self):
        b = Blocking(Lattice((4, 4, 4, 8)), (2, 2, 2, 4))
        assert b.coarse.dims == (2, 2, 2, 2)
        assert b.block_volume == 32

    def test_rejects_nontiling_block(self):
        with pytest.raises(ValueError):
            Blocking(Lattice((4, 4, 4, 8)), (3, 2, 2, 2))

    def test_rejects_odd_coarse(self):
        # 4/1 = 4 fine, but 8/8 = 1 odd coarse extent
        with pytest.raises(ValueError):
            Blocking(Lattice((4, 4, 4, 8)), (1, 1, 1, 8))

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            Blocking(Lattice((4, 4, 4, 8)), (2, 2, 2))

    def test_unit_block_direction(self):
        b = Blocking(Lattice((4, 4, 4, 8)), (1, 2, 2, 2))
        assert b.coarse.dims == (4, 2, 2, 4)


class TestAggregates:
    @pytest.fixture(scope="class")
    def blocking(self):
        return Blocking(Lattice((4, 4, 4, 8)), (2, 2, 2, 4))

    def test_agg_sites_partition(self, blocking):
        flat = np.sort(blocking.agg_sites.ravel())
        assert np.array_equal(flat, np.arange(blocking.fine.volume))

    def test_agg_of_site_consistent(self, blocking):
        for agg in range(blocking.coarse.volume):
            assert np.all(blocking.agg_of_site[blocking.agg_sites[agg]] == agg)

    def test_site_slot_roundtrip(self, blocking):
        sites = blocking.agg_sites[
            blocking.agg_of_site, blocking.site_slot
        ]
        assert np.array_equal(sites, np.arange(blocking.fine.volume))

    def test_aggregate_is_contiguous_block(self, blocking):
        coords = blocking.fine.site_coords[blocking.agg_sites[0]]
        for mu in range(4):
            assert coords[:, mu].min() == 0
            assert coords[:, mu].max() == blocking.block[mu] - 1

    def test_slot_order_x_fastest(self, blocking):
        coords = blocking.fine.site_coords[blocking.agg_sites[0]]
        # slot 0 and slot 1 differ only in x
        assert coords[1, 0] == coords[0, 0] + 1
        assert np.array_equal(coords[1, 1:], coords[0, 1:])


class TestBoundaryCrossing:
    @pytest.fixture(scope="class")
    def blocking(self):
        return Blocking(Lattice((4, 4, 4, 8)), (2, 2, 2, 4))

    def test_cross_fwd_matches_agg_change(self, blocking):
        lat = blocking.fine
        for mu in range(4):
            cross = blocking.crosses_block_fwd(mu)
            agg_change = (
                blocking.agg_of_site[lat.fwd[mu]] != blocking.agg_of_site
            )
            # with >= 2 blocks per direction, crossing <=> aggregate change;
            # wrap-around within a single coarse slice also counts as change
            assert np.array_equal(cross, agg_change)

    def test_cross_bwd_matches_agg_change(self, blocking):
        lat = blocking.fine
        for mu in range(4):
            cross = blocking.crosses_block_bwd(mu)
            agg_change = (
                blocking.agg_of_site[lat.bwd[mu]] != blocking.agg_of_site
            )
            assert np.array_equal(cross, agg_change)

    def test_unit_block_always_crosses(self):
        b = Blocking(Lattice((4, 4, 4, 8)), (1, 2, 2, 2))
        assert b.crosses_block_fwd(0).all()
        assert b.crosses_block_bwd(0).all()

    def test_crossing_fraction(self, blocking):
        # a 2-wide block has half its sites on each mu face
        assert blocking.crosses_block_fwd(0).mean() == 0.5

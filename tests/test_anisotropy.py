"""Anisotropic Wilson-Clover operator (the Aniso40 regime)."""

import numpy as np
import pytest

from repro.dirac import WilsonCloverOperator
from repro.gauge import free_field
from repro.workloads import ANISO40_SCALED
from tests.conftest import random_spinor


class TestAnisotropicOperator:
    def test_free_constant_eigenvalue_independent_of_xi(self, lat44):
        for xi in (1.0, 2.0, 3.5):
            op = WilsonCloverOperator(
                free_field(lat44), mass=0.4, antiperiodic_t=False, anisotropy=xi
            )
            c = np.ones((lat44.volume, 4, 3), dtype=complex)
            np.testing.assert_allclose(op.apply(c), 0.4 * c, atol=1e-13)

    def test_isotropic_limit(self, gauge44, lat44):
        iso = WilsonCloverOperator(gauge44, mass=-0.1)
        xi1 = WilsonCloverOperator(gauge44, mass=-0.1, anisotropy=1.0)
        v = random_spinor(lat44, seed=80)
        np.testing.assert_allclose(iso.apply(v), xi1.apply(v), atol=1e-13)

    def test_spatial_hops_downweighted(self, gauge44, lat44):
        op = WilsonCloverOperator(gauge44, mass=-0.1, anisotropy=3.5)
        iso = WilsonCloverOperator(gauge44, mass=-0.1)
        v = random_spinor(lat44, seed=81)
        # spatial hop magnitude scales by 1/xi, temporal is unchanged
        for mu in (0, 1, 2):
            ratio = np.linalg.norm(op.apply_hop(mu, +1, v).ravel()) / np.linalg.norm(
                iso.apply_hop(mu, +1, v).ravel()
            )
            assert ratio == pytest.approx(1 / 3.5, rel=1e-10)
        t_ratio = np.linalg.norm(op.apply_hop(3, +1, v).ravel()) / np.linalg.norm(
            iso.apply_hop(3, +1, v).ravel()
        )
        assert t_ratio == pytest.approx(1.0, rel=1e-10)

    def test_gamma5_hermiticity_preserved(self, gauge44, lat44):
        op = WilsonCloverOperator(gauge44, mass=-0.1, anisotropy=3.5)
        v = random_spinor(lat44, seed=82)
        w = random_spinor(lat44, seed=83)
        g5 = op.gamma5_diag()[None, :, None]
        lhs = np.vdot(w.ravel(), (g5 * op.apply(g5 * v)).ravel())
        rhs = np.conj(np.vdot(v.ravel(), op.apply(w).ravel()))
        assert abs(lhs - rhs) < 1e-9 * abs(lhs)

    def test_custom_hop_weights(self, gauge44, lat44):
        op = WilsonCloverOperator(
            gauge44, mass=0.2, hop_weights=(0.5, 0.5, 0.5, 1.0)
        )
        assert op.hop_weights == (0.5, 0.5, 0.5, 1.0)
        c_free = WilsonCloverOperator(
            free_field(lat44), mass=0.2, antiperiodic_t=False,
            hop_weights=(0.5, 0.5, 0.5, 1.0),
        )
        c = np.ones((lat44.volume, 4, 3), dtype=complex)
        np.testing.assert_allclose(c_free.apply(c), 0.2 * c, atol=1e-13)

    def test_invalid_parameters_rejected(self, gauge44):
        with pytest.raises(ValueError):
            WilsonCloverOperator(gauge44, mass=0.1, anisotropy=0.0)
        with pytest.raises(ValueError):
            WilsonCloverOperator(gauge44, mass=0.1, hop_weights=(1, 1, 1))
        with pytest.raises(ValueError):
            WilsonCloverOperator(gauge44, mass=0.1, hop_weights=(1, -1, 1, 1))

    def test_dataset_uses_anisotropy(self):
        assert ANISO40_SCALED.anisotropy == 3.5
        kwargs = ANISO40_SCALED.operator_kwargs()
        assert kwargs["anisotropy"] == 3.5

    def test_schur_still_exact(self, gauge2, lat2):
        from repro.dirac import SchurOperator

        op = WilsonCloverOperator(gauge2, mass=0.2, anisotropy=2.0)
        rng = np.random.default_rng(84)
        b = rng.standard_normal((lat2.volume, 4, 3)) + 1j * rng.standard_normal(
            (lat2.volume, 4, 3)
        )
        dense = op.to_dense()
        x_direct = np.linalg.solve(dense, b.reshape(-1)).reshape(lat2.volume, 4, 3)
        schur = SchurOperator(op, 0)
        xe = np.linalg.solve(
            schur.to_dense(), schur.prepare_source(b).reshape(-1)
        ).reshape(schur.half_volume, 4, 3)
        np.testing.assert_allclose(schur.reconstruct(xe, b), x_direct, atol=1e-11)

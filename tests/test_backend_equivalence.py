"""Differential backend-equivalence suite (``pytest -m backend``).

Every registered backend is held to the vectorized-NumPy baseline on
every hot kernel — Wilson-Clover apply, hop sum, clover term, Schur
apply, coarse dense-block apply, aggregation transfers, and the batched
``apply_multi`` variants — across three qualitatively different
ensembles (rough disordered, anisotropic, free field).  The matrix is
the gate for the data-layout refactor: a backend enters the registry
only if it matches the baseline to ``RTOL`` relative error here.

Optional backends (numba/cupy) that registered at import are swept by
the same matrix automatically — ``CANDIDATES`` is read off the live
registry, not hardcoded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    active_backend_name,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    use_backend,
)
from repro.coarse import coarsen_operator
from repro.dirac import WilsonCloverOperator
from repro.dirac.even_odd import SchurOperator
from repro.gauge import disordered_field, free_field
from repro.lattice import Blocking, Lattice
from repro.transfer import Transfer

pytestmark = pytest.mark.backend

RTOL = 1e-12
K_MULTI = 8
N_NULL = 4

#: every non-baseline backend in the registry, optional ones included
CANDIDATES = tuple(n for n in available_backends() if n != "numpy")

ENSEMBLES = ("rough", "aniso", "free")


def _fine_operator(ensemble: str) -> WilsonCloverOperator:
    if ensemble == "rough":
        lat = Lattice((4, 4, 4, 4))
        gauge = disordered_field(lat, np.random.default_rng(101), 0.7)
        return WilsonCloverOperator(gauge, mass=-0.25, c_sw=1.0)
    if ensemble == "aniso":
        # distinct extents + anisotropic hop weights expose index-order
        # and per-direction-weight bugs the isotropic cases cannot
        lat = Lattice((4, 4, 4, 8))
        gauge = disordered_field(lat, np.random.default_rng(102), 0.4, smear_steps=1)
        return WilsonCloverOperator(gauge, mass=-0.3, c_sw=1.3, anisotropy=2.5)
    if ensemble == "free":
        # unit links, no clover: exercises the c_sw = 0 diagonal path
        lat = Lattice((4, 4, 4, 4))
        return WilsonCloverOperator(free_field(lat), mass=0.1, c_sw=0.0)
    raise ValueError(ensemble)


def _rel_err(got: np.ndarray, want: np.ndarray) -> float:
    scale = np.linalg.norm(want)
    return float(np.linalg.norm(got - want) / (scale if scale > 0 else 1.0))


class Problem:
    """One ensemble's operators plus deterministic test vectors."""

    def __init__(self, ensemble: str):
        self.ensemble = ensemble
        op = self._op = _fine_operator(ensemble)
        lat = op.lattice
        rng = np.random.default_rng(7_000 + ENSEMBLES.index(ensemble))

        def cnormal(shape):
            return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)

        self.v = cnormal((lat.volume, op.ns, op.nc))
        self.vs = cnormal((K_MULTI, lat.volume, op.ns, op.nc))
        self.schur = SchurOperator(op, parity=0)
        self.h = self.v[lat.sites_of_parity(0)]

        nulls = [cnormal((lat.volume, op.ns, op.nc)) for _ in range(N_NULL)]
        self.transfer = Transfer(Blocking(lat, (2, 2, 2, 2)), nulls)
        self.coarse = coarsen_operator(op, self.transfer)
        clat = self.coarse.lattice
        self.vc = cnormal((clat.volume, self.coarse.ns, self.coarse.nc))
        self.vcs = cnormal((K_MULTI, clat.volume, self.coarse.ns, self.coarse.nc))
        self.coarse_schur = SchurOperator(self.coarse, parity=0)
        self.hc = self.vc[clat.sites_of_parity(0)]

    @property
    def op(self):
        return self._op


#: operation name -> callable(Problem) -> ndarray; add a row here and
#: every (backend, ensemble) pair picks it up automatically
OPERATIONS = {
    "wilson_apply": lambda p: p.op.apply(p.v),
    "wilson_hop_sum": lambda p: p.op.apply_hopping(p.v),
    "wilson_diag": lambda p: p.op.apply_diag(p.v),
    "wilson_diag_inv": lambda p: p.op.apply_diag_inv(p.v),
    "wilson_schur": lambda p: p.schur.apply(p.h),
    "wilson_multi_k1": lambda p: p.op.apply_multi(p.vs[:1]),
    "wilson_multi_k8": lambda p: p.op.apply_multi(p.vs),
    "coarse_apply": lambda p: p.coarse.apply(p.vc),
    "coarse_hop_sum": lambda p: p.coarse.apply_hopping(p.vc),
    "coarse_diag": lambda p: p.coarse.apply_diag(p.vc),
    "coarse_diag_inv": lambda p: p.coarse.apply_diag_inv(p.vc),
    "coarse_schur": lambda p: p.coarse_schur.apply(p.hc),
    "coarse_multi_k1": lambda p: p.coarse.apply_multi(p.vcs[:1]),
    "coarse_multi_k8": lambda p: p.coarse.apply_multi(p.vcs),
    "restrict": lambda p: p.transfer.restrict(p.v),
    "prolong": lambda p: p.transfer.prolong(p.vc),
    "restrict_multi_k8": lambda p: p.transfer.restrict_multi(p.vs),
    "prolong_multi_k8": lambda p: p.transfer.prolong_multi(p.vcs),
}


@pytest.fixture(scope="module", params=ENSEMBLES)
def problem(request):
    return Problem(request.param)


@pytest.fixture(scope="module")
def baseline(problem):
    """Every operation evaluated once under the NumPy baseline."""
    with use_backend("numpy"):
        return {name: fn(problem) for name, fn in OPERATIONS.items()}


@pytest.mark.parametrize("backend", CANDIDATES)
@pytest.mark.parametrize("operation", sorted(OPERATIONS))
def test_backend_matches_baseline(problem, baseline, backend, operation):
    with use_backend(backend):
        got = OPERATIONS[operation](problem)
    want = baseline[operation]
    assert got.shape == want.shape
    err = _rel_err(got, want)
    assert err <= RTOL, (
        f"{backend}:{operation} on {problem.ensemble} drifted from the "
        f"numpy baseline by {err:.3e} (allowed {RTOL:.0e})"
    )


@pytest.mark.parametrize("backend", CANDIDATES)
def test_backend_results_are_fresh_arrays(problem, backend):
    """Backends must not alias their inputs (solvers mutate results)."""
    with use_backend(backend):
        out = problem.op.apply(problem.v)
    assert out is not problem.v
    assert not np.shares_memory(out, problem.v)


# ----------------------------------------------------------------------
# registry / selection semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_baseline_always_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert {"einsum", "soa"} <= set(names)

    def test_resolve_unknown_lists_choices(self):
        with pytest.raises(KeyError, match="einsum"):
            resolve_backend("does-not-exist")

    def test_use_backend_scopes_and_restores(self):
        before = active_backend_name()
        with use_backend("soa"):
            assert active_backend_name() == "soa"
            with use_backend("einsum"):
                assert active_backend_name() == "einsum"
            assert active_backend_name() == "soa"
        assert active_backend_name() == before

    def test_use_backend_none_is_inert(self):
        with use_backend("einsum"):
            with use_backend(None) as backend:
                assert backend.name == "einsum"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("numpy"))

    def test_register_rejects_non_backend(self):
        with pytest.raises(TypeError):
            register_backend(object())  # type: ignore[arg-type]

    def test_custom_backend_roundtrip(self):
        class Custom(ArrayBackend):
            name = "test-custom"

        try:
            register_backend(Custom())
            assert resolve_backend("test-custom").name == "test-custom"
        finally:
            from repro import backend as backend_mod

            backend_mod._REGISTRY.pop("test-custom", None)


# ----------------------------------------------------------------------
# observability: the active backend is recorded everywhere rankings
# need it (bench host metadata, solve telemetry)
# ----------------------------------------------------------------------
class TestBackendRecording:
    def test_host_metadata_records_backend(self):
        from repro.perf.ledger import host_metadata

        with use_backend("soa"):
            assert host_metadata()["backend"] == "soa"
        assert host_metadata()["backend"] == active_backend_name()

    @pytest.mark.parametrize("backend", CANDIDATES)
    def test_solve_telemetry_records_backend(self, backend):
        from repro.mg.params import LevelParams, MGParams
        from repro.mg.solver import MultigridSolver

        lat = Lattice((4, 4, 4, 4))
        gauge = disordered_field(lat, np.random.default_rng(3), 0.4)
        op = WilsonCloverOperator(gauge, mass=-0.3)
        params = MGParams(
            levels=[LevelParams(block=(2, 2, 2, 2), n_null=2, null_iters=5)],
            outer_tol=1e-5,
            backend=backend,
        )
        solver = MultigridSolver(op, params, rng=np.random.default_rng(11))
        rng = np.random.default_rng(5)
        b = rng.standard_normal((lat.volume, 4, 3)) + 1j * rng.standard_normal(
            (lat.volume, 4, 3)
        )
        result = solver.solve(b)
        assert result.telemetry.attrs["backend"] == backend
        batched = solver.solve_multi(np.stack([b, 2 * b]), batched=True)
        assert all(r.telemetry.attrs["backend"] == backend for r in batched)

    def test_backend_excluded_from_fingerprint(self):
        from repro.mg.params import LevelParams, MGParams

        base = MGParams(levels=[LevelParams(block=(2, 2, 2, 2), n_null=2)])
        swapped = MGParams(
            levels=[LevelParams(block=(2, 2, 2, 2), n_null=2)], backend="soa"
        )
        assert base.fingerprint() == swapped.fingerprint()
        assert "backend" not in base.canonical_dict()

"""Multiple-right-hand-side (batched) solving."""

import numpy as np
import pytest

from repro.coarse import coarsen_operator
from repro.lattice import Blocking
from repro.solvers import batched_gcr, gcr, norm, sequential_gcr
from repro.transfer import Transfer
from tests.conftest import random_spinor

pytestmark = pytest.mark.mrhs



@pytest.fixture(scope="module")
def rhs_stack(lat44):
    return np.stack([random_spinor(lat44, seed=400 + k) for k in range(4)])


class TestApplyMulti:
    def test_matches_single_applies_fine(self, wilson44, rhs_stack):
        batched = wilson44.apply_multi(rhs_stack)
        for k in range(rhs_stack.shape[0]):
            np.testing.assert_allclose(
                batched[k], wilson44.apply(rhs_stack[k]), atol=1e-12
            )

    def test_matches_single_applies_coarse(self, wilson448, lat448):
        t = Transfer(
            Blocking(lat448, (2, 2, 2, 2)),
            [random_spinor(lat448, seed=410 + k) for k in range(4)],
        )
        mc = coarsen_operator(wilson448, t)
        rng = np.random.default_rng(9)
        vs = rng.standard_normal((3, mc.lattice.volume, 2, 4)) + 1j * rng.standard_normal(
            (3, mc.lattice.volume, 2, 4)
        )
        batched = mc.apply_multi(vs)
        for k in range(3):
            np.testing.assert_allclose(batched[k], mc.apply(vs[k]), atol=1e-11)


class TestBatchedGCR:
    def test_all_systems_converge(self, wilson44, rhs_stack):
        results = batched_gcr(wilson44, rhs_stack, tol=1e-8, maxiter=2000)
        assert len(results) == 4
        for res, b in zip(results, rhs_stack):
            assert res.converged
            assert norm(b - wilson44.apply(res.x)) / norm(b) < 1e-7

    def test_matches_sequential_solutions(self, wilson44, rhs_stack):
        batched = batched_gcr(wilson44, rhs_stack, tol=1e-10, maxiter=2000)
        seq = sequential_gcr(wilson44, rhs_stack, tol=1e-10, maxiter=2000)
        for rb, rs in zip(batched, seq):
            assert norm(rb.x - rs.x) / norm(rs.x) < 1e-6

    def test_shared_matvec_batches(self, wilson44, rhs_stack):
        # one batched matvec serves all K systems: the locality win
        results = batched_gcr(wilson44, rhs_stack, tol=1e-8, maxiter=2000)
        batches = results[0].extra["matvec_batches"]
        seq = sequential_gcr(wilson44, rhs_stack, tol=1e-8, maxiter=2000)
        total_seq_matvecs = sum(r.matvecs for r in seq)
        assert batches < total_seq_matvecs  # K-fold operator-load saving

    def test_zero_rhs_in_stack(self, wilson44, rhs_stack):
        stack = rhs_stack.copy()
        stack[1] = 0
        results = batched_gcr(wilson44, stack, tol=1e-8, maxiter=2000)
        assert results[1].converged
        assert norm(results[1].x) == 0.0

    def test_single_rhs_matches_gcr(self, wilson44, lat44):
        b = random_spinor(lat44, seed=420)
        res_b = batched_gcr(wilson44, b[None], tol=1e-9, maxiter=2000)[0]
        res_g = gcr(wilson44, b, tol=1e-9, maxiter=2000)
        assert res_b.converged and res_g.converged
        assert norm(res_b.x - res_g.x) / norm(res_g.x) < 1e-5

"""The solve service: batching, setup cache, backpressure, timeouts."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.dirac import WilsonCloverOperator
from repro.gauge import disordered_field
from repro.lattice import Lattice
from repro.mg import LevelParams, MGParams
from repro.serve import (
    ServeConfig,
    ServiceClosedError,
    ServiceOverloadedError,
    SetupCache,
    SolveService,
    SolveTimeoutError,
    operator_fingerprint,
    setup_cache_key,
)
from repro.telemetry.metrics import get_registry
from repro.workloads import run_propagator

pytestmark = pytest.mark.serve

TOL = 1e-7


@pytest.fixture(scope="module")
def lattice():
    return Lattice((4, 4, 4, 8))


@pytest.fixture(scope="module")
def gauge(lattice):
    return disordered_field(
        lattice, np.random.default_rng(11), 0.55, smear_steps=1
    )


@pytest.fixture(scope="module")
def op(gauge):
    return WilsonCloverOperator(gauge, mass=-1.406 + 0.03, c_sw=1.0)


@pytest.fixture(scope="module")
def params():
    return MGParams(
        levels=[LevelParams(block=(2, 2, 2, 4), n_null=6, null_iters=40)],
        outer_tol=TOL,
    )


@pytest.fixture(scope="module")
def sources(lattice):
    rng = np.random.default_rng(3)
    shape = (6, lattice.volume, 4, 3)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


def make_service(op, params, **cfg_kwargs) -> SolveService:
    cfg = ServeConfig(**{"max_wait_s": 0.05, **cfg_kwargs})
    svc = SolveService(cfg)
    svc.register("wc", op, params, rng=np.random.default_rng(5))
    return svc


class TestBatchedEquivalence:
    def test_burst_is_coalesced_and_matches_sequential(self, op, params, sources):
        with make_service(op, params, max_batch=8) as svc:
            futures = [svc.submit("wc", b) for b in sources]
            batched = [f.result() for f in futures]
        with make_service(op, params, max_batch=1) as svc:
            sequential = [svc.solve("wc", b) for b in sources]

        for rb, rs, b in zip(batched, sequential, sources):
            assert rb.converged and rs.converged
            bnorm = np.linalg.norm(b.ravel())
            res_b = np.linalg.norm((b - op.apply(rb.x)).ravel()) / bnorm
            res_s = np.linalg.norm((b - op.apply(rs.x)).ravel()) / bnorm
            assert res_b < TOL and res_s < TOL
            dev = np.abs(rb.x - rs.x).max() / np.abs(rs.x).max()
            assert dev < 1e-4  # both tol-1e-7 solutions of the same system

    def test_burst_actually_batched(self, op, params, sources):
        with make_service(op, params, max_batch=8) as svc:
            futures = [svc.submit("wc", b) for b in sources]
            results = [f.result() for f in futures]
        assert svc.stats["batches"] < len(sources)
        assert any(r.extra.get("n_rhs", 1) > 1 for r in results)

    def test_mixed_tolerances_do_not_coalesce(self, op, params, sources):
        with make_service(op, params, max_batch=8) as svc:
            f1 = svc.submit("wc", sources[0], tol=1e-5)
            f2 = svc.submit("wc", sources[1], tol=1e-7)
            r1, r2 = f1.result(), f2.result()
        assert r1.extra.get("n_rhs", 1) == 1
        assert r2.extra.get("n_rhs", 1) == 1

    def test_unknown_operator_rejected(self, op, params, sources):
        with make_service(op, params) as svc:
            with pytest.raises(KeyError):
                svc.submit("nope", sources[0])


class TestSetupCache:
    def test_memory_hit_on_second_registration(self, op, params):
        cache = SetupCache()
        h1 = cache.get_or_build(op, params, np.random.default_rng(5))
        h2 = cache.get_or_build(op, params, np.random.default_rng(99))
        assert h1 is h2
        assert cache.stats["hits"] == 1
        assert cache.stats["misses"] == 1

    def test_key_distinguishes_params_and_operator(self, op, gauge, params):
        other_params = MGParams(
            levels=[LevelParams(block=(2, 2, 2, 4), n_null=4, null_iters=40)],
            outer_tol=TOL,
        )
        other_op = WilsonCloverOperator(gauge, mass=-1.0, c_sw=1.0)
        k = setup_cache_key(op, params)
        assert k != setup_cache_key(op, other_params)
        assert k != setup_cache_key(other_op, params)
        assert operator_fingerprint(op) != operator_fingerprint(other_op)

    def test_lru_eviction_by_memory(self, op, gauge, params):
        cache = SetupCache(max_bytes=1)  # everything oversizes this
        cache.get_or_build(op, params, np.random.default_rng(5))
        other_op = WilsonCloverOperator(gauge, mass=-1.0, c_sw=1.0)
        cache.get_or_build(other_op, params, np.random.default_rng(5))
        assert cache.stats["evictions"] == 1
        assert len(cache) == 1  # only the most recent survives
        # the evicted entry rebuilds as a miss
        cache.get_or_build(op, params, np.random.default_rng(5))
        assert cache.stats["misses"] == 3

    def test_disk_roundtrip_skips_null_generation(self, tmp_path, op, params):
        telemetry.enable()
        telemetry.reset()
        try:
            registry = get_registry()
            cache1 = SetupCache(disk_dir=str(tmp_path))
            h1 = cache1.get_or_build(op, params, np.random.default_rng(5))
            generated = registry.value("mg.null_vector_generations")
            assert generated == params.levels[0].n_null

            # fresh cache = restarted service: restores from disk,
            # generates zero null vectors
            cache2 = SetupCache(disk_dir=str(tmp_path))
            h2 = cache2.get_or_build(op, params, np.random.default_rng(777))
            assert registry.value("mg.null_vector_generations") == generated
            assert cache2.stats["disk_hits"] == 1
            assert cache2.stats["misses"] == 0
        finally:
            telemetry.disable()
        for v1, v2 in zip(h1.export_null_vectors()[0], h2.export_null_vectors()[0]):
            assert np.array_equal(v1, v2)

    def test_stale_disk_entry_revalidated(self, tmp_path, op, gauge, params):
        cache1 = SetupCache(disk_dir=str(tmp_path))
        cache1.get_or_build(op, params, np.random.default_rng(5))
        # corrupt the persisted fingerprint by renaming another op's key
        import os

        other_op = WilsonCloverOperator(gauge, mass=-1.0, c_sw=1.0)
        src = cache1._path(setup_cache_key(op, params))  # noqa: SLF001
        dst = cache1._path(setup_cache_key(other_op, params))  # noqa: SLF001
        os.rename(src, dst)
        cache2 = SetupCache(disk_dir=str(tmp_path))
        cache2.get_or_build(other_op, params, np.random.default_rng(5))
        assert cache2.stats["invalid"] == 1
        assert cache2.stats["misses"] == 1

    def test_service_warm_restart_counter(self, tmp_path, op, params, sources):
        """The acceptance scenario: second service run against the same
        gauge config reports a cache hit and zero generations."""
        telemetry.enable()
        telemetry.reset()
        try:
            registry = get_registry()
            cache = SetupCache(disk_dir=str(tmp_path))
            with SolveService(ServeConfig(max_batch=4), cache=cache) as svc:
                svc.register("wc", op, params, rng=np.random.default_rng(5))
                svc.solve("wc", sources[0])
            first_gen = registry.value("mg.null_vector_generations")
            assert first_gen > 0

            cache2 = SetupCache(disk_dir=str(tmp_path))
            with SolveService(ServeConfig(max_batch=4), cache=cache2) as svc:
                svc.register("wc", op, params, rng=np.random.default_rng(5))
                svc.solve("wc", sources[0])
            assert registry.value("mg.null_vector_generations") == first_gen
            assert (
                registry.value("serve.setup_cache.disk_hits", tier="disk") > 0
            )
        finally:
            telemetry.disable()


class TestBackpressureAndTimeouts:
    def test_overload_rejected(self, op, params, sources):
        with make_service(op, params, max_batch=1, queue_capacity=2) as svc:
            # the single worker is busy with the first request; the
            # bounded pending queue behind it fills and rejects
            blocker = svc.submit("wc", sources[0])
            time.sleep(0.1)  # let the dispatcher pick up the blocker
            with pytest.raises(ServiceOverloadedError):
                for b in sources:
                    svc.submit("wc", b)
            assert svc.stats["rejected"] >= 1
            blocker.result()

    def test_queued_timeout_fails_fast(self, op, params, sources):
        with make_service(op, params, max_batch=1) as svc:
            first = svc.submit("wc", sources[0])
            doomed = svc.submit("wc", sources[1], timeout_s=1e-9)
            with pytest.raises(SolveTimeoutError):
                doomed.result()
            assert first.result().converged
            assert svc.stats["timeouts"] == 1

    def test_closed_service_rejects(self, op, params, sources):
        svc = make_service(op, params)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit("wc", sources[0])

    def test_close_drains_pending(self, op, params, sources):
        svc = make_service(op, params, max_batch=4)
        futures = [svc.submit("wc", b) for b in sources[:3]]
        svc.close(drain=True)
        assert all(f.result().converged for f in futures)

    def test_close_without_drain_fails_pending(self, op, params, sources):
        svc = make_service(op, params, max_batch=1, max_wait_s=0.0)
        futures = [svc.submit("wc", b) for b in sources]
        svc.close(drain=False)
        outcomes = []
        for f in futures:
            try:
                outcomes.append(f.result())
            except ServiceClosedError:
                outcomes.append(None)
        assert any(o is None for o in outcomes)


class TestServicePropagator:
    def test_propagator_routes_through_batcher(self, lattice, op, params):
        with make_service(op, params, max_batch=12) as svc:
            result = run_propagator(
                None,
                lattice,
                op,
                n_components=4,
                service=svc,
                operator_name="wc",
            )
        assert len(result.iterations) == 4
        assert len(result.error_over_residual) == 4
        # coalesced: far fewer batches than 2x4 individual solves
        assert svc.stats["batches"] <= 4
        assert all(np.isfinite(e) and e > 0 for e in result.error_over_residual)

    def test_direct_flag_bypasses_service(self, lattice, op, params):
        from repro.mg import MultigridSolver

        solver = MultigridSolver(op, params, rng=np.random.default_rng(5))

        def solve(b, tol_override=None):
            return solver.solve(b, tol=tol_override)

        with make_service(op, params, max_batch=12) as svc:
            before = svc.stats["submitted"]
            result = run_propagator(
                solve,
                lattice,
                op,
                n_components=2,
                service=svc,
                operator_name="wc",
                direct=True,
            )
            assert svc.stats["submitted"] == before
        assert len(result.iterations) == 2


class TestMeanLevelStatsHardening:
    def test_heterogeneous_level_keys(self):
        from repro.workloads import PropagatorResult

        r = PropagatorResult()
        r.level_stats = [
            {0: {"op_applies": 2, "restricts": 1}, 1: {"op_applies": 4}},
            {0: {"op_applies": 4}},  # missing level 1, missing restricts
            {2: {"gcr_iters": 7}},  # level the others never saw
        ]
        out = r.mean_level_stats()
        assert out[0]["op_applies"] == pytest.approx(3.0)
        assert out[0]["restricts"] == pytest.approx(1.0)
        assert out[1]["op_applies"] == pytest.approx(4.0)
        assert out[2]["gcr_iters"] == pytest.approx(7.0)

    def test_empty(self):
        from repro.workloads import PropagatorResult

        assert PropagatorResult().mean_level_stats() == {}


@pytest.mark.telemetry
class TestServeTelemetry:
    def test_spans_and_histograms_published(self, op, params, sources):
        telemetry.enable()
        telemetry.reset()
        try:
            registry = get_registry()
            with make_service(op, params, max_batch=4) as svc:
                futures = [svc.submit("wc", b) for b in sources[:4]]
                [f.result() for f in futures]
            sizes = registry.histogram("serve.batch_size", op="wc")
            assert sizes.count >= 1
            assert registry.value("serve.requests", op="wc") == 4
            assert registry.value("serve.completed", op="wc") == 4
            waits = registry.histogram("serve.queue_wait_s")
            assert waits.count == 4
            spans = [s["name"] for s in telemetry.trace_document()["spans"]]
            assert "serve.batch" in spans
        finally:
            telemetry.disable()


class TestRuntimeVerification:
    def test_verify_level_validated(self):
        with pytest.raises(ValueError, match="verify_level"):
            ServeConfig(verify_level="paranoid")

    def test_solve_level_checks_every_result(self, op, params, sources):
        with make_service(op, params, verify_level="solve") as svc:
            results = svc.solve_many("wc", sources[:3], tol=TOL)
            # setup invariants at register() + one residual check per solve
            assert svc.stats["verify_checks"] >= 4 + len(results)
            assert svc.stats["verify_failures"] == 0
        for res in results:
            attached = res.telemetry.attrs["verify"]
            assert attached and all(d["passed"] for d in attached)

    def test_off_level_attaches_nothing(self, op, params, sources):
        with make_service(op, params) as svc:
            res = svc.solve("wc", sources[0], tol=TOL)
        assert "verify" not in res.telemetry.attrs
        assert svc.stats["verify_checks"] == 0

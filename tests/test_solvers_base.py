"""Solver infrastructure: results, counters, basic linear algebra."""

import numpy as np
import pytest

from repro.solvers import OperatorCounter, SolveResult, norm, norm2, vdot
from tests.conftest import random_spinor


class TestLinearAlgebra:
    def test_vdot_conjugate_linear(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((5, 2)) + 1j * rng.standard_normal((5, 2))
        b = rng.standard_normal((5, 2)) + 1j * rng.standard_normal((5, 2))
        assert vdot(a, 2j * b) == pytest.approx(2j * vdot(a, b))
        assert vdot(2j * a, b) == pytest.approx(-2j * vdot(a, b))

    def test_norms_consistent(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((4, 3)) + 1j * rng.standard_normal((4, 3))
        assert norm(a) == pytest.approx(np.sqrt(norm2(a)))
        assert norm2(a) == pytest.approx(vdot(a, a).real)

    def test_norm_matches_numpy(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((7, 2, 3)) + 1j * rng.standard_normal((7, 2, 3))
        assert norm(a) == pytest.approx(np.linalg.norm(a.ravel()))


class TestOperatorCounter:
    def test_counts_and_delegates(self, wilson44, lat44):
        counter = OperatorCounter(wilson44)
        v = random_spinor(lat44, seed=3)
        out = counter.apply(v)
        counter.apply(v)
        assert counter.count == 2
        np.testing.assert_array_equal(out, wilson44.apply(v))
        assert counter.ns == 4 and counter.nc == 3

    def test_reset(self, wilson44, lat44):
        counter = OperatorCounter(wilson44)
        counter.apply(random_spinor(lat44, seed=4))
        counter.reset()
        assert counter.count == 0

    def test_matvec_alias(self, wilson44, lat44):
        counter = OperatorCounter(wilson44)
        v = random_spinor(lat44, seed=5)
        np.testing.assert_array_equal(counter.matvec(v), wilson44.apply(v))
        assert counter.count == 1


class TestSolveResult:
    def test_repr_contains_key_fields(self):
        r = SolveResult(
            x=np.zeros(3), converged=True, iterations=7,
            final_residual=1.5e-9, residual_history=[1.0], matvecs=14,
        )
        s = repr(r)
        assert "converged=True" in s and "iterations=7" in s

    def test_defaults(self):
        r = SolveResult(np.zeros(2), False, 0, 1.0)
        assert r.residual_history == []
        assert r.extra == {}
        assert r.inner_iterations == 0

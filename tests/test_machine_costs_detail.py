"""Fine-grained checks on the machine-model cost composition."""

import numpy as np
import pytest

from repro.gpu.mapping import Strategy
from repro.machine import (
    MachineModel,
    TITAN,
    mg_level_specs,
)
from repro.machine.costs import StencilCost
from repro.workloads import ISO48, ISO64


@pytest.fixture(scope="module")
def model():
    return MachineModel()


@pytest.fixture(scope="module")
def levels():
    return mg_level_specs(ISO64.dims, ISO64.blockings[64], [24, 32])


class TestStencilCost:
    def test_fine_grid_overlaps_communication(self, model, levels):
        # fine dslash: total = max(kernel, halo), not the sum
        st = model.stencil_cost(levels[0], 512)
        assert st.total_s == pytest.approx(max(st.kernel_s, st.halo_s))

    def test_coarse_grid_does_not_overlap(self, model, levels):
        # Section 6.5: the coarse implementation does not overlap
        st = model.stencil_cost(levels[2], 512)
        assert st.total_s == pytest.approx(st.kernel_s + st.halo_s)

    def test_halo_grows_with_partitioned_dims(self, model, levels):
        h64 = model.stencil_cost(levels[1], 64).halo_s
        h512 = model.stencil_cost(levels[1], 512).halo_s
        assert h512 > 0
        # more cuts, smaller local volume: halo time per apply changes,
        # but it must never be free once partitioned
        assert h64 > 0

    def test_half_precision_faster(self, model, levels):
        full = model.stencil_cost(levels[0], 64, precision_bytes=4.0)
        half = model.stencil_cost(levels[0], 64, precision_bytes=2.0)
        assert half.kernel_s < full.kernel_s

    def test_kernel_time_decreases_with_nodes(self, model, levels):
        t = [model.stencil_cost(levels[0], n).kernel_s for n in (64, 256, 512)]
        assert t[0] > t[1] > t[2]

    def test_coarsest_kernel_time_flattens(self, model, levels):
        # the coarsest grid stops strong-scaling: local volume hits 2^4
        t64 = model.stencil_cost(levels[2], 64).kernel_s
        t512 = model.stencil_cost(levels[2], 512).kernel_s
        # less than the ideal 8x speedup from 8x the nodes
        assert t64 / t512 < 6.0


class TestStrategyDependence:
    def test_baseline_strategy_ruins_coarse_levels(self, levels):
        # the whole point of the paper: the machine model priced with
        # site-only parallelism makes the coarsest level far slower
        fine_grained = MachineModel(strategy=Strategy.DOT_PRODUCT)
        naive = MachineModel(strategy=Strategy.BASELINE)
        t_fg = fine_grained.stencil_cost(levels[2], 512).kernel_s
        t_nv = naive.stencil_cost(levels[2], 512).kernel_s
        assert t_nv > 20 * t_fg

    def test_fine_level_indifferent_to_strategy(self, levels):
        # the Wilson kernel uses site parallelism regardless
        a = MachineModel(strategy=Strategy.DOT_PRODUCT).stencil_cost(levels[0], 64)
        b = MachineModel(strategy=Strategy.BASELINE).stencil_cost(levels[0], 64)
        assert a.kernel_s == pytest.approx(b.kernel_s)


class TestTransferAndBlas:
    def test_transfer_time_positive_and_scales(self, model, levels):
        t64 = model.transfer_time(levels[0], levels[1], 64)
        t512 = model.transfer_time(levels[0], levels[1], 512)
        assert 0 < t512 < t64

    def test_blas_respects_precision(self, model, levels):
        t4 = model.blas_time(levels[0], 64, precision_bytes=4.0)
        t2 = model.blas_time(levels[0], 64, precision_bytes=2.0)
        assert t2 < t4

    def test_reduction_dominated_by_allreduce_on_coarse(self, model, levels):
        t = model.reduction_time(levels[2], 512)
        assert t > TITAN.network.allreduce_time(512)
        # the local kernel part is tiny compared to the collective
        assert t < 2.5 * TITAN.network.allreduce_time(512)


class TestProcGridConsistency:
    def test_iso48_grids(self, model):
        levels = mg_level_specs(ISO48.dims, ISO48.blockings[24], [24, 24])
        for nodes in ISO48.node_counts:
            for lev in levels:
                grid = model.proc_grid(lev, nodes)
                assert int(np.prod(grid)) == nodes

"""Pytest bridge for the numerical-invariant registry.

Every registered invariant runs as its own parametrized test against
the canonical Aniso40-scaled context, so a broken identity names itself
in the test report.  The negative tests then *break* an operator on
purpose (perturbing the prolongator basis) and require the registry to
catch it — a verifier that cannot fail is not verifying anything.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import telemetry
from repro.mg.hierarchy import MultigridHierarchy
from repro.mg.params import LevelParams, MGParams
from repro.verify import VerifyContext, run_invariant, run_registry
from repro.verify import get as get_invariant
from repro.verify import names as invariant_names

pytestmark = pytest.mark.verify


@pytest.fixture(scope="session")
def aniso_ctx(aniso40_solve):
    """A VerifyContext sharing the session's canonical hierarchy."""
    ds, solver, _result = aniso40_solve
    return VerifyContext(
        op=solver.hierarchy.levels[0].op,
        params=solver.params,
        hierarchy=solver.hierarchy,
        subject=ds.label,
        solve_tol=ds.target_residuum,
    )


class TestRegistryOnAniso40:
    @pytest.mark.parametrize("name", invariant_names())
    def test_invariant_passes(self, aniso_ctx, name):
        inv = get_invariant(name)
        reports = run_invariant(inv, aniso_ctx)
        assert reports, f"invariant {name} produced no report"
        for r in reports:
            assert r.passed, (
                f"{r.name}: residual {r.residual:.3e} > tol {r.tolerance:.3e}"
                f" ({r.error or 'no error'})"
            )
            assert r.severity == inv.severity
            assert r.duration_s >= 0.0

    def test_full_report_document(self, aniso_ctx, tmp_path):
        report = run_registry(aniso_ctx)
        assert report.all_passed and report.critical_passed
        assert not report.failures()
        path = tmp_path / "verify.json"
        report.write(path)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.verify/v1"
        assert doc["all_passed"] is True
        assert doc["n_checks"] == len(report.reports) >= 10
        assert doc["meta"]["subject"] == aniso_ctx.subject

    def test_max_needs_caps_expense(self, aniso_ctx):
        report = run_registry(aniso_ctx, max_needs="gauge")
        names = {r.name.split(".", 1)[0] for r in report.reports}
        assert names == {"gauge"}

    def test_unknown_invariant_is_loud(self, aniso_ctx):
        with pytest.raises(KeyError, match="no-such-check"):
            run_registry(aniso_ctx, names_filter=["no-such-check"])


# -- negative: a broken operator must be caught -------------------------

@pytest.fixture(scope="module")
def tiny_hierarchy(wilson448):
    params = MGParams(
        levels=[LevelParams(block=(2, 2, 2, 4), n_null=4, null_iters=10)],
        outer_tol=1e-6,
    )
    return MultigridHierarchy.build(
        wilson448, params, np.random.default_rng(5)
    )


def _ctx_for(hierarchy):
    return VerifyContext(hierarchy=hierarchy, subject="tiny", n_probes=1)


class TestBrokenOperatorIsCaught:
    def test_intact_hierarchy_passes(self, tiny_hierarchy):
        ctx = _ctx_for(tiny_hierarchy)
        for name in ("transfer.orthonormality", "coarse.galerkin"):
            for r in run_invariant(get_invariant(name), ctx):
                assert r.passed

    def test_perturbed_prolongator_fails(self, tiny_hierarchy):
        transfer = tiny_hierarchy.levels[0].transfer
        basis = transfer._basis
        saved = basis.copy()
        try:
            basis += 1e-3 * np.random.default_rng(6).standard_normal(basis.shape)
            ortho = run_invariant(
                get_invariant("transfer.orthonormality"), _ctx_for(tiny_hierarchy)
            )
            galerkin = run_invariant(
                get_invariant("coarse.galerkin"), _ctx_for(tiny_hierarchy)
            )
        finally:
            basis[...] = saved
        assert any(not r.passed for r in ortho), "orthonormality check missed it"
        assert any(not r.passed for r in galerkin), "Galerkin check missed it"

    def test_crashing_check_reports_failure(self, tiny_hierarchy):
        # a context with no operator makes operator-tier checks raise;
        # that must surface as a failed report, not an exception
        ctx = VerifyContext(subject="empty")
        reports = run_invariant(get_invariant("dirac.gamma5_hermiticity"), ctx)
        assert len(reports) == 1
        assert not reports[0].passed
        assert reports[0].error


# -- runtime mode -------------------------------------------------------

class TestRuntimeMode:
    def test_verify_level_validated(self):
        with pytest.raises(ValueError, match="verify_level"):
            MGParams(levels=[], verify_level="sometimes")

    def test_verify_level_excluded_from_fingerprint(self):
        lp = LevelParams(block=(2, 2, 2, 4), n_null=4)
        a = MGParams(levels=[lp], verify_level="off")
        b = MGParams(levels=[lp], verify_level="solve")
        assert a.fingerprint() == b.fingerprint()
        assert "verify_level" not in a.canonical_dict()

    def test_setup_verification_emits_telemetry(self, wilson448):
        params = MGParams(
            levels=[LevelParams(block=(2, 2, 2, 4), n_null=4, null_iters=10)],
            verify_level="setup",
        )
        telemetry.enable()
        telemetry.reset()
        try:
            MultigridHierarchy.build(wilson448, params, np.random.default_rng(5))
            metrics = telemetry.get_registry().collect(kind="counter")
            checks = [m for m in metrics if m.name == "verify.checks"]
        finally:
            telemetry.disable()
        assert checks, "no verify.checks counter booked during setup"
        assert sum(m.value for m in checks) >= 4

    def test_solve_verification_attaches_reports(self, wilson448):
        from repro.mg.solver import MultigridSolver

        params = MGParams(
            levels=[LevelParams(block=(2, 2, 2, 4), n_null=4, null_iters=10)],
            outer_tol=1e-6,
            verify_level="solve",
        )
        solver = MultigridSolver(wilson448, params, np.random.default_rng(5))
        rng = np.random.default_rng(7)
        shape = (wilson448.lattice.volume, wilson448.ns, wilson448.nc)
        b = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        res = solver.solve(b)
        attached = res.telemetry.attrs["verify"]
        assert attached and all(d["passed"] for d in attached)
        assert {d["name"] for d in attached} == {"mg.residual_truthful"}

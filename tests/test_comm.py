"""Simulated-MPI communication: communicator, halo exchange, partitioned ops."""

import numpy as np
import pytest

from repro.coarse import coarsen_operator
from repro.comm import HaloExchange, PartitionedOperator, SimulatedComm, TrafficLog
from repro.lattice import NDIM, Blocking, Lattice, Partition
from repro.transfer import Transfer
from tests.conftest import random_spinor

PROC_GRIDS = [(1, 1, 1, 2), (2, 1, 1, 1), (2, 2, 1, 1), (1, 1, 2, 2), (2, 2, 2, 2)]


class TestCommunicator:
    def test_send_recv_roundtrip(self):
        comm = SimulatedComm(2)
        buf = np.arange(12.0)
        comm.send(0, 1, buf)
        out = comm.recv(0, 1)
        assert np.array_equal(out, buf)

    def test_fifo_per_channel(self):
        comm = SimulatedComm(2)
        comm.send(0, 1, np.array([1.0]))
        comm.send(0, 1, np.array([2.0]))
        assert comm.recv(0, 1)[0] == 1.0
        assert comm.recv(0, 1)[0] == 2.0

    def test_tags_separate_channels(self):
        comm = SimulatedComm(2)
        comm.send(0, 1, np.array([1.0]), tag="a")
        comm.send(0, 1, np.array([2.0]), tag="b")
        assert comm.recv(0, 1, tag="b")[0] == 2.0
        assert comm.recv(0, 1, tag="a")[0] == 1.0

    def test_recv_without_send_deadlocks(self):
        comm = SimulatedComm(2)
        with pytest.raises(RuntimeError, match="deadlock"):
            comm.recv(0, 1)

    def test_send_copies_buffer(self):
        comm = SimulatedComm(2)
        buf = np.array([1.0])
        comm.send(0, 1, buf)
        buf[0] = 99.0
        assert comm.recv(0, 1)[0] == 1.0

    def test_traffic_accounting(self):
        comm = SimulatedComm(3)
        comm.send(0, 1, np.zeros(4))
        comm.send(1, 1, np.zeros(2))  # self-send = local copy
        assert comm.traffic.messages == 1
        assert comm.traffic.bytes_sent == 32
        assert comm.traffic.local_copies == 1
        assert comm.traffic.local_bytes == 16

    def test_allreduce(self):
        comm = SimulatedComm(4)
        vals = np.arange(4.0)[:, None]
        out = comm.allreduce_sum(vals)
        assert out[0] == 6.0
        assert comm.traffic.allreduces == 1

    def test_allreduce_shape_check(self):
        comm = SimulatedComm(4)
        with pytest.raises(ValueError):
            comm.allreduce_sum(np.zeros((3, 1)))

    def test_rank_range_check(self):
        comm = SimulatedComm(2)
        with pytest.raises(ValueError):
            comm.send(0, 5, np.zeros(1))


class TestTrafficLog:
    def test_reset(self):
        log = TrafficLog()
        log.record_message(0, 1, 100, "x")
        log.record_allreduce()
        log.reset()
        assert log.messages == 0 and log.allreduces == 0 and not log.per_direction

    def test_summary(self):
        log = TrafficLog()
        log.record_message(0, 1, 64)
        s = log.summary()
        assert s["messages"] == 1 and s["bytes_sent"] == 64


class TestHaloExchange:
    @pytest.mark.parametrize("grid", PROC_GRIDS)
    def test_gathered_neighbors_match_global(self, lat448, grid):
        part = Partition(lat448, grid)
        halo = HaloExchange(part)
        v = random_spinor(lat448, seed=7)
        locals_ = v[part.owned_sites]
        for mu in range(NDIM):
            for sign in (+1, -1):
                gathered = halo.gather_neighbors(locals_, mu, sign)
                table = lat448.fwd[mu] if sign > 0 else lat448.bwd[mu]
                expect = v[table][part.owned_sites]
                assert np.array_equal(gathered, expect), (grid, mu, sign)

    def test_no_traffic_for_unpartitioned_direction(self, lat448):
        part = Partition(lat448, (1, 1, 1, 2))
        halo = HaloExchange(part)
        v = random_spinor(lat448, seed=8)
        locals_ = v[part.owned_sites]
        halo.gather_neighbors(locals_, 0, +1)
        assert halo.comm.traffic.messages == 0
        halo.gather_neighbors(locals_, 3, +1)
        assert halo.comm.traffic.messages == part.num_ranks

    def test_face_bytes(self, lat448):
        part = Partition(lat448, (1, 1, 1, 2))
        halo = HaloExchange(part)
        # face volume in t: 4*4*4 = 64 sites, 12 complex dof, 16 B each
        assert halo.face_bytes(3, 12) == 64 * 12 * 16

    def test_mismatched_comm_rejected(self, lat448):
        part = Partition(lat448, (1, 1, 1, 2))
        with pytest.raises(ValueError):
            HaloExchange(part, SimulatedComm(3))


class TestPartitionedOperator:
    @pytest.mark.parametrize("grid", PROC_GRIDS)
    def test_exact_agreement_fine(self, wilson448, lat448, grid):
        part = Partition(lat448, grid)
        pop = PartitionedOperator(wilson448, part)
        v = random_spinor(lat448, seed=9)
        np.testing.assert_array_equal(pop.apply(v), wilson448.apply(v))

    def test_exact_agreement_coarse(self, wilson448, lat448):
        t = Transfer(
            Blocking(lat448, (2, 2, 2, 2)),
            [random_spinor(lat448, seed=700 + k) for k in range(4)],
        )
        mc = coarsen_operator(wilson448, t)
        part = Partition(mc.lattice, (1, 1, 1, 2))
        pop = PartitionedOperator(mc, part)
        rng = np.random.default_rng(10)
        v = rng.standard_normal((mc.lattice.volume, 2, 4)) + 1j * rng.standard_normal(
            (mc.lattice.volume, 2, 4)
        )
        np.testing.assert_array_equal(pop.apply(v), mc.apply(v))

    def test_traffic_matches_analytic(self, wilson448, lat448):
        for grid in [(1, 1, 1, 2), (2, 2, 2, 2)]:
            part = Partition(lat448, grid)
            pop = PartitionedOperator(wilson448, part)
            pop.apply(random_spinor(lat448, seed=11))
            assert pop.comm.traffic.bytes_sent == pop.exchange_bytes_per_apply()

    def test_split_join_roundtrip(self, wilson448, lat448):
        part = Partition(lat448, (2, 1, 1, 2))
        pop = PartitionedOperator(wilson448, part)
        v = random_spinor(lat448, seed=12)
        assert np.array_equal(pop.join(pop.split(v)), v)

    def test_mismatched_partition_rejected(self, wilson448):
        other = Partition(Lattice((4, 4, 4, 4)), (1, 1, 1, 2))
        with pytest.raises(ValueError):
            PartitionedOperator(wilson448, other)

    def test_usable_in_solver(self, wilson448, lat448):
        # a partitioned operator is a drop-in replacement in any solver
        from repro.solvers import bicgstab

        part = Partition(lat448, (1, 1, 2, 2))
        pop = PartitionedOperator(wilson448, part)
        b = random_spinor(lat448, seed=13)
        res = bicgstab(pop, b, tol=1e-8, maxiter=5000)
        assert res.converged
        resid = np.linalg.norm((b - wilson448.apply(res.x)).ravel())
        assert resid < 2e-8 * np.linalg.norm(b.ravel())

"""The command-line entry point."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Aniso40" in out and "Iso64" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "5x5x2x8" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "baseline (Nc=24)" in capsys.readouterr().out

    def test_table3_replay(self, capsys):
        assert main(["table3", "--mode", "replay"]) == 0
        out = capsys.readouterr().out
        assert "BiCGStab" in out and "24/32" in out

    def test_fig4_replay(self, capsys):
        assert main(["fig4"]) == 0
        assert "coarsest fraction" in capsys.readouterr().out

    def test_bad_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_out_dir_writes_files(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path / "artifacts")]) == 0
        f = tmp_path / "artifacts" / "table1.txt"
        assert f.exists()
        assert "Aniso40" in f.read_text()

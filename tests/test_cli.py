"""The command-line entry point."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Aniso40" in out and "Iso64" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "5x5x2x8" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "baseline (Nc=24)" in capsys.readouterr().out

    def test_table3_replay(self, capsys):
        assert main(["table3", "--mode", "replay"]) == 0
        out = capsys.readouterr().out
        assert "BiCGStab" in out and "24/32" in out

    def test_fig4_replay(self, capsys):
        assert main(["fig4"]) == 0
        assert "coarsest fraction" in capsys.readouterr().out

    def test_bad_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_out_dir_writes_files(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path / "artifacts")]) == 0
        f = tmp_path / "artifacts" / "table1.txt"
        assert f.exists()
        assert "Aniso40" in f.read_text()

    def test_trace_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["trace", "NoSuchDataset"])

    def test_replay_mode_does_not_enable_telemetry(self, tmp_path, capsys):
        from repro import telemetry

        assert main(["fig4", "--out", str(tmp_path)]) == 0
        assert not telemetry.enabled()
        assert not (tmp_path / "trace.json").exists()

    def test_measured_out_persists_trace(self, tmp_path, monkeypatch, capsys):
        """Measured-mode solve traces are persisted, not discarded."""
        import repro.reporting.fig4 as fig4_mod
        from repro import telemetry
        from repro.telemetry import load_trace

        def fake_render(mode="replay", n_rhs=2, trace=None):
            with telemetry.span("mg.solve", level=0):
                pass
            return "fig4 stub"

        monkeypatch.setattr(fig4_mod, "render", fake_render)
        assert main(["fig4", "--mode", "measured", "--out", str(tmp_path)]) == 0
        assert not telemetry.enabled()  # toggled back off after the run
        doc = load_trace(tmp_path / "trace.json")
        assert doc["meta"] == {"kind": "artifact", "artifact": "fig4", "mode": "measured"}
        assert doc["spans"] and doc["spans"][0]["name"] == "mg.solve"

    def test_measured_telemetry_flag_writes_named_file(self, tmp_path, monkeypatch, capsys):
        import repro.reporting.fig4 as fig4_mod
        from repro.telemetry import load_trace

        monkeypatch.setattr(fig4_mod, "render", lambda mode="replay", n_rhs=2, trace=None: "stub")
        out = tmp_path / "run.json"
        assert main(["fig4", "--mode", "measured", "--telemetry", str(out)]) == 0
        assert load_trace(out)["meta"]["artifact"] == "fig4"

    def test_check_gauge_subset(self, tmp_path, capsys):
        """`repro check` with a cheap invariant subset writes the report."""
        import json

        out = tmp_path / "verify.json"
        code = main([
            "check", "Aniso40",
            "--invariants", "gauge.unitarity,gauge.plaquette",
            "--json", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.verify/v1"
        assert doc["critical_passed"] is True
        assert {r["name"] for r in doc["reports"]} == {
            "gauge.unitarity", "gauge.plaquette",
        }
        assert "all invariants PASS" in capsys.readouterr().out

    def test_check_max_needs_gauge(self, tmp_path, capsys):
        """--max-needs gauge runs without building any hierarchy."""
        import json

        out = tmp_path / "verify.json"
        assert main(["check", "Aniso40", "--max-needs", "gauge",
                     "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert all(r["name"].startswith("gauge.") for r in doc["reports"])

    def test_check_rejects_unknown_dataset(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", "NoSuchDataset", "--max-needs", "gauge"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown dataset" in err and "valid datasets" in err

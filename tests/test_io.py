"""Gauge and spinor field I/O."""

import numpy as np
import pytest

from repro.fields import SpinorField
from repro.gauge import (
    disordered_field,
    gauge_fingerprint,
    load_gauge,
    load_spinor,
    save_gauge,
    save_spinor,
)


class TestGaugeIO:
    @pytest.mark.parametrize("reconstruct", [18, 12, 8])
    def test_roundtrip(self, tmp_path, gauge44, reconstruct):
        path = tmp_path / f"cfg{reconstruct}.npz"
        save_gauge(path, gauge44, reconstruct=reconstruct)
        loaded = load_gauge(path)
        assert loaded.lattice == gauge44.lattice
        tol = 1e-13 if reconstruct != 8 else 1e-9
        assert np.abs(loaded.data - gauge44.data).max() < tol

    def test_compression_shrinks_file(self, tmp_path, gauge44):
        p18 = tmp_path / "c18.npz"
        p8 = tmp_path / "c8.npz"
        save_gauge(p18, gauge44, reconstruct=18)
        save_gauge(p8, gauge44, reconstruct=8)
        assert p8.stat().st_size < p18.stat().st_size

    def test_bad_level_rejected(self, tmp_path, gauge44):
        with pytest.raises(ValueError):
            save_gauge(tmp_path / "x.npz", gauge44, reconstruct=10)


class TestGaugeFingerprint:
    def test_stable_across_save_load(self, tmp_path, gauge44):
        """Lossless storage round-trips to the identical fingerprint."""
        fp = gauge_fingerprint(gauge44)
        path = tmp_path / "cfg.npz"
        save_gauge(path, gauge44, reconstruct=18)
        assert gauge_fingerprint(load_gauge(path)) == fp

    def test_deterministic_across_objects(self, lat44):
        """Regenerating the same ensemble gives the same hash."""
        u1 = disordered_field(lat44, np.random.default_rng(7), 0.4)
        u2 = disordered_field(lat44, np.random.default_rng(7), 0.4)
        assert u1 is not u2
        assert gauge_fingerprint(u1) == gauge_fingerprint(u2)

    def test_sensitive_to_content_and_geometry(self, lat44, gauge44):
        other = disordered_field(lat44, np.random.default_rng(8), 0.4)
        assert gauge_fingerprint(other) != gauge_fingerprint(gauge44)
        perturbed = gauge44.data.copy()
        perturbed[0, 0, 0, 0] += 1e-15
        from repro.fields import GaugeField

        assert gauge_fingerprint(
            GaugeField(gauge44.lattice, perturbed)
        ) != gauge_fingerprint(gauge44)


class TestSpinorIO:
    def test_roundtrip(self, tmp_path, lat44):
        f = SpinorField.random(lat44, rng=np.random.default_rng(1))
        path = tmp_path / "spinor.npz"
        save_spinor(path, f)
        g = load_spinor(path)
        assert g.lattice == f.lattice
        assert np.array_equal(g.data, f.data)

    def test_coarse_spinor_roundtrip(self, tmp_path, lat44):
        f = SpinorField.random(lat44, ns=2, nc=8, rng=np.random.default_rng(2))
        path = tmp_path / "coarse.npz"
        save_spinor(path, f)
        g = load_spinor(path)
        assert g.ns == 2 and g.nc == 8
        assert np.array_equal(g.data, f.data)

"""Chirality-preserving aggregation transfer operators."""

import numpy as np
import pytest

from repro.dirac.gamma import chirality_slices
from repro.lattice import Blocking, Lattice
from repro.transfer import Transfer
from tests.conftest import random_spinor


@pytest.fixture(scope="module")
def transfer44(lat44, blocking44):
    nulls = [random_spinor(lat44, seed=200 + k) for k in range(5)]
    return Transfer(blocking44, nulls)


def random_coarse(transfer, seed):
    r = np.random.default_rng(seed)
    shape = (transfer.coarse_lattice.volume, 2, transfer.coarse_nc)
    return r.standard_normal(shape) + 1j * r.standard_normal(shape)


class TestConstruction:
    def test_shapes(self, transfer44):
        assert transfer44.coarse_ns == 2
        assert transfer44.coarse_nc == 5
        assert transfer44.coarse_lattice.dims == (2, 2, 2, 2)

    def test_no_vectors_rejected(self, blocking44):
        with pytest.raises(ValueError):
            Transfer(blocking44, [])

    def test_wrong_volume_rejected(self, blocking44):
        bad = np.zeros((7, 4, 3), dtype=complex)
        with pytest.raises(ValueError):
            Transfer(blocking44, [bad])

    def test_too_many_vectors_rejected(self, lat44):
        # aggregate dof per chirality = bv * 2 * 3 = 16*6 = 96 on 2^4 blocks
        blocking = Blocking(lat44, (2, 2, 2, 2))
        nulls = [random_spinor(lat44, seed=k) for k in range(97)]
        with pytest.raises(ValueError):
            Transfer(blocking, nulls)

    def test_dependent_vectors_rejected(self, lat44, blocking44):
        v = random_spinor(lat44, seed=1)
        with pytest.raises(ValueError):
            Transfer(blocking44, [v, 2.0 * v])


class TestOrthonormality:
    def test_block_orthonormal(self, transfer44):
        assert transfer44.orthonormality_violation() < 1e-12

    def test_restrict_prolong_identity(self, transfer44):
        # R P = I on the coarse space
        xc = random_coarse(transfer44, 300)
        rt = transfer44.restrict(transfer44.prolong(xc))
        np.testing.assert_allclose(rt, xc, atol=1e-12)

    def test_prolong_restrict_projector(self, transfer44, lat44):
        # P R is an orthogonal projector on the fine space
        v = random_spinor(lat44, seed=301)
        pr = lambda x: transfer44.prolong(transfer44.restrict(x))
        once = pr(v)
        np.testing.assert_allclose(pr(once), once, atol=1e-12)
        # projector norm <= 1
        assert np.linalg.norm(once.ravel()) <= np.linalg.norm(v.ravel()) + 1e-12


class TestAdjointness:
    def test_restrictor_is_prolongator_dagger(self, transfer44, lat44):
        v = random_spinor(lat44, seed=302)
        xc = random_coarse(transfer44, 303)
        lhs = np.vdot(transfer44.restrict(v).ravel(), xc.ravel())
        rhs = np.vdot(v.ravel(), transfer44.prolong(xc).ravel())
        assert abs(lhs - rhs) < 1e-10 * abs(lhs)


class TestChirality:
    def test_prolong_preserves_chirality(self, transfer44):
        up, down = chirality_slices()
        xc = random_coarse(transfer44, 304)
        xc[:, 1, :] = 0  # only coarse chirality +
        fine = transfer44.prolong(xc)
        assert np.abs(fine[:, down, :]).max() < 1e-14

    def test_restrict_preserves_chirality(self, transfer44, lat44):
        up, down = chirality_slices()
        v = random_spinor(lat44, seed=305)
        v[:, up, :] = 0  # only fine chirality -
        xc = transfer44.restrict(v)
        assert np.abs(xc[:, 0, :]).max() < 1e-14

    def test_null_vectors_reconstructed_exactly(self, lat44, blocking44):
        # the prolongator must reproduce the near-null vectors it was
        # built from (weak approximation property, exact here because
        # the vectors are in the span of the aggregates by construction)
        nulls = [random_spinor(lat44, seed=400 + k) for k in range(3)]
        t = Transfer(blocking44, nulls)
        for v in nulls:
            pr = t.prolong(t.restrict(v))
            np.testing.assert_allclose(pr, v, atol=1e-11)


class TestFieldInterface:
    def test_restrict_field(self, transfer44, lat44):
        from repro.fields import SpinorField

        f = SpinorField(lat44, random_spinor(lat44, seed=306))
        out = transfer44.restrict_field(f)
        assert out.lattice == transfer44.coarse_lattice
        np.testing.assert_allclose(out.data, transfer44.restrict(f.data))

    def test_prolong_field(self, transfer44):
        from repro.fields import SpinorField

        xc = random_coarse(transfer44, 307)
        f = SpinorField(transfer44.coarse_lattice, xc)
        out = transfer44.prolong_field(f)
        assert out.lattice == transfer44.fine_lattice

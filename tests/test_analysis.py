"""Hadron correlators and propagator contractions."""

import numpy as np
import pytest

from repro.analysis import (
    effective_mass,
    fold_correlator,
    meson_correlator,
    pion_correlator,
    point_propagator,
)
from repro.dirac import SchurOperator, WilsonCloverOperator, gamma_matrices
from repro.gauge import free_field
from repro.lattice import Lattice
from repro.solvers import bicgstab


@pytest.fixture(scope="module")
def free_system():
    lat = Lattice((4, 4, 4, 8))
    op = WilsonCloverOperator(free_field(lat), mass=0.5, c_sw=0.0)
    schur = SchurOperator(op, 0)

    def solve(b, tol_override=None):
        res = bicgstab(schur, schur.prepare_source(b), tol=tol_override or 1e-10,
                       maxiter=5000)
        assert res.converged
        res.x = schur.reconstruct(res.x, b)
        return res

    prop = point_propagator(solve, lat)
    return lat, op, prop


class TestPropagator:
    def test_shape(self, free_system):
        lat, _, prop = free_system
        assert prop.shape == (lat.volume, 4, 3, 4, 3)

    def test_satisfies_dirac_equation(self, free_system):
        lat, op, prop = free_system
        # M S = delta: check one source column
        col = np.ascontiguousarray(prop[:, :, :, 0, 0])
        out = op.apply(col)
        expect = np.zeros_like(col)
        expect[0, 0, 0] = 1.0
        np.testing.assert_allclose(out, expect, atol=1e-8)

    def test_color_diagonal_on_free_field(self, free_system):
        # without gauge fields, the propagator is proportional to
        # delta_{c c'} in color
        _, _, prop = free_system
        off = prop[:, :, 0, :, 1]
        assert np.abs(off).max() < 1e-8


class TestPionCorrelator:
    def test_positive(self, free_system):
        lat, _, prop = free_system
        corr = pion_correlator(prop, lat)
        assert np.all(corr > 0)

    def test_matches_general_contraction(self, free_system):
        # the |S|^2 identity: C_pion == general contraction with G = g5
        lat, _, prop = free_system
        fast = pion_correlator(prop, lat)
        general = meson_correlator(prop, lat)
        np.testing.assert_allclose(general.imag, 0, atol=1e-8)
        np.testing.assert_allclose(general.real, fast, rtol=1e-8)

    def test_time_reflection_symmetry(self, free_system):
        # antiperiodic-in-time point source at t=0: C(t) = C(T-t)
        lat, _, prop = free_system
        corr = pion_correlator(prop, lat)
        lt = lat.dims[3]
        for t in range(1, lt // 2):
            assert corr[t] == pytest.approx(corr[lt - t], rel=1e-6)

    def test_decays_from_source(self, free_system):
        lat, _, prop = free_system
        corr = pion_correlator(prop, lat)
        assert corr[0] > corr[1] > corr[2] > corr[lat.dims[3] // 2]


class TestDerivedQuantities:
    def test_fold(self, free_system):
        lat, _, prop = free_system
        corr = pion_correlator(prop, lat)
        folded = fold_correlator(corr)
        assert len(folded) == lat.dims[3] // 2 + 1
        assert folded[1] == pytest.approx(0.5 * (corr[1] + corr[-1]))

    def test_effective_mass_positive_and_flattens(self, free_system):
        lat, _, prop = free_system
        corr = pion_correlator(prop, lat)
        meff = effective_mass(fold_correlator(corr), cosh=False)
        assert np.all(meff[: lat.dims[3] // 4] > 0)

    def test_heavier_quark_heavier_meson(self):
        lat = Lattice((4, 4, 4, 8))
        masses = []
        for mq in (0.3, 0.8):
            op = WilsonCloverOperator(free_field(lat), mass=mq, c_sw=0.0)
            schur = SchurOperator(op, 0)

            def solve(b, tol_override=None):
                r = bicgstab(schur, schur.prepare_source(b),
                             tol=tol_override or 1e-10, maxiter=5000)
                r.x = schur.reconstruct(r.x, b)
                return r

            prop = point_propagator(solve, lat)
            corr = pion_correlator(prop, lat)
            meff = effective_mass(fold_correlator(corr), cosh=False)
            masses.append(meff[1])
        assert masses[1] > masses[0]

    def test_vector_channel_differs_from_pion(self, free_system):
        lat, _, prop = free_system
        g = gamma_matrices()
        rho = meson_correlator(prop, lat, gamma_sink=g[0], gamma_source=g[0])
        pion = pion_correlator(prop, lat)
        assert not np.allclose(np.abs(rho), pion)

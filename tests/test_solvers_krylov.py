"""Krylov solvers: CG/CGNE/CGNR, BiCGStab, MR, GCR."""

import numpy as np
import pytest

from repro.dirac import NormalOperator, SchurOperator
from repro.solvers import (
    MRSmoother,
    bicgstab,
    cg,
    cgne,
    cgnr,
    gcr,
    mr,
    norm,
)
from tests.conftest import random_spinor


def true_residual(op, x, b):
    return norm(b - op.apply(x)) / norm(b)


class TestCG:
    def test_converges_on_normal_system(self, wilson44, lat44):
        n = NormalOperator(wilson44)
        b = random_spinor(lat44, seed=60)
        res = cg(n, b, tol=1e-8, maxiter=2000)
        assert res.converged
        assert true_residual(n, res.x, b) < 2e-8

    def test_final_residual_reported_correctly(self, wilson44, lat44):
        n = NormalOperator(wilson44)
        b = random_spinor(lat44, seed=61)
        res = cg(n, b, tol=1e-6, maxiter=2000)
        assert res.final_residual == pytest.approx(true_residual(n, res.x, b), rel=1e-3)

    def test_zero_rhs(self, wilson44, lat44):
        n = NormalOperator(wilson44)
        res = cg(n, np.zeros((lat44.volume, 4, 3), dtype=complex))
        assert res.converged and res.iterations == 0
        assert norm(res.x) == 0.0

    def test_initial_guess(self, wilson44, lat44):
        n = NormalOperator(wilson44)
        b = random_spinor(lat44, seed=62)
        exact = cg(n, b, tol=1e-10, maxiter=4000).x
        warm = cg(n, b, x0=exact, tol=1e-8, maxiter=10)
        assert warm.converged
        assert warm.iterations <= 2

    def test_maxiter_respected(self, wilson44, lat44):
        n = NormalOperator(wilson44)
        b = random_spinor(lat44, seed=63)
        res = cg(n, b, tol=1e-30, maxiter=5)
        assert not res.converged
        assert res.iterations == 5

    def test_residual_history_monotone(self, wilson44, lat44):
        # CG residuals may oscillate slightly but should trend down
        n = NormalOperator(wilson44)
        b = random_spinor(lat44, seed=64)
        res = cg(n, b, tol=1e-8, maxiter=2000)
        assert res.residual_history[-1] < res.residual_history[0]


class TestCGNormalEquations:
    def test_cgnr_solves_original_system(self, wilson44, lat44):
        b = random_spinor(lat44, seed=65)
        res = cgnr(wilson44, b, tol=1e-8, maxiter=3000)
        assert true_residual(wilson44, res.x, b) < 1e-6

    def test_cgne_solves_original_system(self, wilson44, lat44):
        b = random_spinor(lat44, seed=66)
        res = cgne(wilson44, b, tol=1e-8, maxiter=3000)
        assert true_residual(wilson44, res.x, b) < 1e-6

    def test_matvec_accounting_doubled(self, wilson44, lat44):
        b = random_spinor(lat44, seed=67)
        res = cgnr(wilson44, b, tol=1e-6, maxiter=2000)
        assert res.matvecs >= 2 * res.iterations


class TestBiCGStab:
    def test_converges(self, wilson448, lat448):
        b = random_spinor(lat448, seed=68)
        res = bicgstab(wilson448, b, tol=1e-9, maxiter=5000)
        assert res.converged
        assert true_residual(wilson448, res.x, b) < 2e-9

    def test_two_matvecs_per_iteration(self, wilson44, lat44):
        b = random_spinor(lat44, seed=69)
        res = bicgstab(wilson44, b, tol=1e-8)
        assert res.matvecs <= 2 * res.iterations + 1

    def test_faster_than_cgnr(self, wilson448, lat448):
        # the paper's reason for preferring BiCGStab over CGNE/CGNR
        b = random_spinor(lat448, seed=70)
        res_b = bicgstab(wilson448, b, tol=1e-8, maxiter=10000)
        res_c = cgnr(wilson448, b, tol=1e-8, maxiter=10000)
        assert res_b.matvecs < res_c.matvecs

    def test_zero_rhs(self, wilson44, lat44):
        res = bicgstab(wilson44, np.zeros((lat44.volume, 4, 3), dtype=complex))
        assert res.converged and norm(res.x) == 0.0

    def test_initial_guess(self, wilson44, lat44):
        b = random_spinor(lat44, seed=71)
        x0 = bicgstab(wilson44, b, tol=1e-10, maxiter=5000).x
        warm = bicgstab(wilson44, b, x0=x0, tol=1e-8, maxiter=10)
        assert warm.converged

    def test_on_schur_system(self, wilson448, lat448):
        schur = SchurOperator(wilson448, 0)
        b = random_spinor(lat448, seed=72)
        bs = schur.prepare_source(b)
        res = bicgstab(schur, bs, tol=1e-9, maxiter=5000)
        assert res.converged

    def test_schur_fewer_iterations_than_full(self, wilson448, lat448):
        # red-black preconditioning accelerates convergence (Section 3.3)
        b = random_spinor(lat448, seed=73)
        full = bicgstab(wilson448, b, tol=1e-8, maxiter=20000)
        schur = SchurOperator(wilson448, 0)
        red = bicgstab(schur, schur.prepare_source(b), tol=1e-8, maxiter=20000)
        assert red.iterations < full.iterations


class TestMR:
    def test_reduces_residual(self, wilson44, lat44):
        b = random_spinor(lat44, seed=74)
        res = mr(wilson44, b, maxiter=4)
        assert res.residual_history[-1] < res.residual_history[0]

    def test_fixed_iteration_count(self, wilson44, lat44):
        b = random_spinor(lat44, seed=75)
        res = mr(wilson44, b, maxiter=7)
        assert res.iterations == 7

    def test_omega_one_locally_optimal(self, wilson44, lat44):
        # one full MR step with omega=1 minimizes |r - a Mr| over a
        b = random_spinor(lat44, seed=76)
        r1 = mr(wilson44, b, maxiter=1, omega=1.0).residual_history[-1]
        r_damped = mr(wilson44, b, maxiter=1, omega=0.5).residual_history[-1]
        assert r1 <= r_damped + 1e-12

    def test_converges_with_tolerance(self, wilson44, lat44):
        b = random_spinor(lat44, seed=77)
        res = mr(wilson44, b, tol=1e-3, maxiter=10000)
        assert res.converged
        assert res.final_residual < 1e-3

    def test_smoother_interface(self, wilson44, lat44):
        s = MRSmoother(wilson44, steps=4)
        r = random_spinor(lat44, seed=78)
        z = s.apply(r)
        assert norm(r - wilson44.apply(z)) < norm(r)

    def test_zero_rhs(self, wilson44, lat44):
        res = mr(wilson44, np.zeros((lat44.volume, 4, 3), dtype=complex))
        assert res.converged


class TestGCR:
    def test_converges_unpreconditioned(self, wilson44, lat44):
        b = random_spinor(lat44, seed=79)
        res = gcr(wilson44, b, tol=1e-8, maxiter=2000)
        assert res.converged
        assert true_residual(wilson44, res.x, b) < 2e-8

    def test_residual_monotone_within_cycle(self, wilson44, lat44):
        # GCR minimizes the residual at every step
        b = random_spinor(lat44, seed=80)
        res = gcr(wilson44, b, tol=1e-8, maxiter=500, nkrylov=10)
        h = res.residual_history
        assert all(h[i + 1] <= h[i] + 1e-12 for i in range(len(h) - 1))

    def test_preconditioner_reduces_iterations(self, wilson448, lat448):
        b = random_spinor(lat448, seed=81)
        plain = gcr(wilson448, b, tol=1e-8, maxiter=3000)
        pre = gcr(
            wilson448,
            b,
            tol=1e-8,
            maxiter=3000,
            preconditioner=MRSmoother(wilson448, steps=4),
        )
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_zero_rhs(self, wilson44, lat44):
        res = gcr(wilson44, np.zeros((lat44.volume, 4, 3), dtype=complex))
        assert res.converged

    def test_restart_allows_long_solves(self, wilson448, lat448):
        b = random_spinor(lat448, seed=82)
        res = gcr(wilson448, b, tol=1e-8, maxiter=3000, nkrylov=5)
        assert res.converged

    def test_maxiter_respected(self, wilson44, lat44):
        b = random_spinor(lat44, seed=83)
        res = gcr(wilson44, b, tol=1e-30, maxiter=7)
        assert res.iterations == 7

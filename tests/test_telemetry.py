"""The telemetry subsystem: tracer, metrics, export, and solver wiring.

The whole module is marker-gated (``pytest -q -m telemetry`` runs just
this fast group).
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.solvers.base import OperatorCounter, SolveResult
from repro.telemetry import (
    MetricsRegistry,
    SolveTelemetry,
    Tracer,
    aggregate_level_seconds,
    level_breakdown_table,
    load_trace,
    trace_document,
    validate_trace,
    write_trace,
)
from repro.telemetry.tracer import _NULL_SPAN

pytestmark = pytest.mark.telemetry


class TestTracer:
    def test_nesting_follows_call_order(self):
        tr = Tracer(enabled=True)
        with tr.span("outer", level=0):
            with tr.span("inner-a", level=1):
                pass
            with tr.span("inner-b", level=1):
                with tr.span("leaf"):
                    pass
        assert len(tr.roots) == 1
        root = tr.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner-a", "inner-b"]
        assert [c.name for c in root.children[1].children] == ["leaf"]

    def test_durations_are_consistent(self):
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        root = tr.roots[0]
        assert root.duration_s >= root.children[0].duration_s >= 0.0
        assert root.self_time_s() >= 0.0

    def test_annotate_and_walk(self):
        tr = Tracer(enabled=True)
        with tr.span("a") as sp:
            sp.annotate(iterations=7)
            with tr.span("b"):
                pass
        assert tr.roots[0].attrs["iterations"] == 7
        assert [s.name for s in tr.roots[0].walk()] == ["a", "b"]
        assert tr.total_s("b") <= tr.total_s("a")

    def test_sibling_roots_ordered(self):
        tr = Tracer(enabled=True)
        for name in ("first", "second", "third"):
            with tr.span(name):
                pass
        assert [r.name for r in tr.roots] == ["first", "second", "third"]

    def test_attribute_accumulates_costs(self):
        tr = Tracer(enabled=True)
        with tr.span("kernel") as sp:
            assert sp.attribute(flops=100.0, bytes=200.0) is sp
            sp.attribute(flops=50.0)
        assert tr.roots[0].attrs["flops"] == 150.0
        assert tr.roots[0].attrs["bytes"] == 200.0

    def test_attribute_on_null_span_is_noop(self):
        tr = Tracer(enabled=False)
        sp = tr.span("hot")
        assert sp.attribute(flops=1e9, bytes=1e9) is sp

    def test_disabled_returns_shared_null_span(self):
        tr = Tracer(enabled=False)
        s1 = tr.span("hot", level=3)
        s2 = tr.span("other")
        assert s1 is s2 is _NULL_SPAN  # no allocation on the disabled path
        with s1 as inner:
            assert inner is _NULL_SPAN
            inner.annotate(anything=1)
        assert tr.roots == []

    def test_reset_drops_roots(self):
        tr = Tracer(enabled=True)
        with tr.span("x"):
            pass
        tr.reset()
        assert tr.roots == []

    def test_threads_trace_independent_trees(self):
        tr = Tracer(enabled=True)

        def work(tag):
            with tr.span("root", tag=tag):
                with tr.span("child", tag=tag):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.roots) == 4
        for root in tr.roots:
            assert [c.name for c in root.children] == ["child"]
            assert root.children[0].attrs["tag"] == root.attrs["tag"]


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("matvecs", level=0).inc()
        reg.counter("matvecs", level=0).inc(2)
        reg.counter("matvecs", level=1).inc(5)
        reg.gauge("n_levels").set(3)
        assert reg.value("matvecs", level=0) == 3
        assert reg.value("matvecs", level=1) == 5
        assert reg.value("n_levels") == 3

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        a = reg.counter("bytes", mu=0)
        b = reg.counter("bytes", mu=1)
        assert a is not b
        assert a is reg.counter("bytes", mu=0)

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.sum == pytest.approx(5050.0)
        assert h.mean == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_histogram_empty_edge_cases(self):
        reg = MetricsRegistry()
        h = reg.histogram("empty")
        assert h.count == 0
        assert h.sum == 0.0
        assert h.mean == 0.0  # not NaN, not ZeroDivisionError
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 0.0
        assert h.percentile(100) == 0.0
        # invalid p raises even when empty
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(100.1)

    def test_histogram_single_sample(self):
        reg = MetricsRegistry()
        h = reg.histogram("one")
        h.observe(42.0)
        for p in (0, 25, 50, 99, 100):
            assert h.percentile(p) == 42.0
        assert h.mean == 42.0

    def test_histogram_p0_p100_are_min_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("bounds")
        for v in (7.0, 3.0, 9.0, 5.0):
            h.observe(v)
        assert h.percentile(0) == 3.0
        assert h.percentile(100) == 9.0

    def test_disabled_registry_hands_out_null_metric(self):
        reg = MetricsRegistry(enabled=False)
        m = reg.counter("anything", level=2)
        m.inc(100)
        m.observe(1.0)
        m.set(5.0)
        assert reg.collect() == []
        assert reg.value("anything", level=2) == 0.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", level=0).inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["counter"]["c"][0] == {"labels": {"level": 0}, "value": 1.0}
        assert snap["gauge"]["g"][0]["value"] == 2.0
        assert snap["histogram"]["h"][0]["count"] == 1


class TestOperatorCounterUnification:
    class _Op:
        ns, nc = 4, 3

        def apply(self, v):
            return v

    class _Stats:
        op_applies = 0

    def test_counts_and_books_into_stats_sink(self):
        stats = self._Stats()
        reg = MetricsRegistry()
        op = OperatorCounter(
            self._Op(), stats=stats, metric=reg.counter("mg.op_applies", level=1)
        )
        v = np.ones(3)
        op.apply(v)
        op.matvec(v)
        assert op.count == 2
        assert stats.op_applies == 2
        assert reg.value("mg.op_applies", level=1) == 2
        op.reset()
        assert op.count == 0


class TestSolveResultTelemetry:
    def _result(self, **kw):
        return SolveResult(np.zeros(4), True, 3, 1e-9, [1.0, 1e-9], 5, **kw)

    def test_extra_is_alias_of_telemetry_attrs(self):
        r = self._result()
        r.extra["level_stats"] = {0: {"op_applies": 1}}
        assert r.telemetry.attrs["level_stats"] == {0: {"op_applies": 1}}
        assert r.extra is r.telemetry.attrs

    def test_constructor_extra_kwarg_still_accepted(self):
        r = self._result(extra={"reductions": 12})
        assert r.extra["reductions"] == 12
        assert r.telemetry.attrs["reductions"] == 12

    def test_to_dict_round_trips_through_json(self):
        r = self._result()
        r.telemetry.level_stats = {0: {"op_applies": 2.0}}
        r.telemetry.metrics["outer_iterations"] = 3.0
        d = json.loads(json.dumps(r.to_dict()))
        assert d["iterations"] == 3
        assert d["converged"] is True
        tele = SolveTelemetry.from_dict(d["telemetry"])
        assert tele.level_stats == {0: {"op_applies": 2.0}}
        assert tele.metrics["outer_iterations"] == 3.0


class TestExport:
    def _populated(self):
        tr = Tracer(enabled=True)
        reg = MetricsRegistry()
        with tr.span("mg.solve", level=0):
            with tr.span("smoother", level=0):
                pass
            with tr.span("coarse-solve", level=1):
                pass
        reg.counter("mg.op_applies", level=0).inc(4)
        reg.histogram("solver.iterations_per_solve", solver="gcr").observe(7)
        return tr, reg

    def test_schema_round_trip(self, tmp_path):
        tr, reg = self._populated()
        path = write_trace(tmp_path / "t.json", tr, reg, meta={"dataset": "x"})
        doc = load_trace(path)
        assert doc["schema"] == telemetry.SCHEMA
        assert doc["meta"]["dataset"] == "x"
        assert doc["spans"][0]["name"] == "mg.solve"
        names = {c["name"] for c in doc["spans"][0]["children"]}
        assert names == {"smoother", "coarse-solve"}
        assert doc["metrics"]["counter"]["mg.op_applies"][0]["value"] == 4.0

    def test_validate_rejects_bad_documents(self):
        with pytest.raises(ValueError):
            validate_trace({"schema": "something/else"})
        tr, reg = self._populated()
        doc = trace_document(tr, reg)
        del doc["spans"][0]["children"]
        with pytest.raises(ValueError):
            validate_trace(doc)

    def test_aggregate_level_seconds_partitions_total(self):
        tr, reg = self._populated()
        doc = trace_document(tr, reg)
        per_level = aggregate_level_seconds(doc["spans"])
        assert set(per_level) == {0, 1}
        total = sum(v for lvl in per_level.values() for v in lvl.values())
        root_total = sum(s["duration_s"] for s in doc["spans"])
        assert total == pytest.approx(root_total, rel=1e-9, abs=1e-12)

    def test_breakdown_table_renders_all_levels(self):
        table = level_breakdown_table(
            {0: {"smoother": 1.5, "restrict": 0.5}, 1: {"coarse-solve": 2.0}}
        )
        assert "level" in table and "smoother" in table and "coarse-solve" in table
        assert "1.5" in table and "2" in table


class TestGlobalToggle:
    def test_enable_disable_cycle(self):
        assert not telemetry.enabled()
        telemetry.enable()
        try:
            assert telemetry.enabled()
            with telemetry.span("probe"):
                pass
            assert telemetry.get_tracer().find("probe")
        finally:
            telemetry.disable()
            telemetry.reset()
        assert not telemetry.enabled()
        assert telemetry.get_tracer().roots == []


class TestSolverIntegration:
    @pytest.fixture()
    def enabled_telemetry(self):
        telemetry.enable()
        telemetry.reset()
        yield
        telemetry.disable()
        telemetry.reset()

    def _mg_solver(self):
        from repro.dirac import WilsonCloverOperator
        from repro.gauge import disordered_field
        from repro.lattice import Lattice
        from repro.mg import LevelParams, MGParams, MultigridSolver

        lat = Lattice((4, 4, 4, 4))
        u = disordered_field(lat, np.random.default_rng(3), 0.4)
        op = WilsonCloverOperator(u, mass=-0.2, c_sw=1.0)
        params = MGParams(
            levels=[LevelParams(block=(2, 2, 2, 2), n_null=3, null_iters=10)],
            outer_tol=1e-6,
            outer_maxiter=40,
        )
        return MultigridSolver(op, params, np.random.default_rng(4))

    def test_mg_solve_produces_consistent_per_level_spans(self, enabled_telemetry):
        from tests.conftest import random_spinor
        from repro.lattice import Lattice

        mg = self._mg_solver()
        res = mg.solve(random_spinor(Lattice((4, 4, 4, 4)), seed=5))

        tracer = telemetry.get_tracer()
        names = {s.name for s in tracer.iter_spans()}
        for required in (
            "mg.setup",
            "mg.solve",
            "smoother",
            "restrict",
            "prolong",
            "coarse-solve",
            "solve.gcr",
        ):
            assert required in names, f"missing span {required}"

        # span tree and typed result agree
        assert res.telemetry.spans and res.telemetry.spans[0]["name"] == "mg.solve"
        assert set(res.telemetry.level_stats) == {0, 1}
        assert res.telemetry.level_stats[0]["smoother_applies"] > 0

        # exclusive per-level seconds partition the traced total exactly
        doc = trace_document()
        per_level = aggregate_level_seconds(doc["spans"])
        total = sum(v for lvl in per_level.values() for v in lvl.values())
        root_total = sum(s["duration_s"] for s in doc["spans"])
        assert total == pytest.approx(root_total, rel=1e-6)

        # metrics registry absorbed the LevelStats accounting
        reg = telemetry.get_registry()
        assert reg.value("mg.solves", subspace="12/12") >= 0  # label may differ
        assert sum(
            e["value"]
            for e in reg.snapshot()["counter"].get("mg.op_applies", [])
        ) > 0

    def test_measured_solve_round_trips_through_disk(
        self, enabled_telemetry, tmp_path
    ):
        """telemetry/v1 survives write→load→validate on a *real* solve.

        The synthetic round-trip in ``TestExport`` checks the envelope;
        this one checks that everything a measured MG solve produces —
        nested spans, perf attribution, metric families — lands intact
        after a trip through the JSON file format.
        """
        from tests.conftest import random_spinor
        from repro.lattice import Lattice

        mg = self._mg_solver()
        mg.solve(random_spinor(Lattice((4, 4, 4, 4)), seed=7))

        from repro.perf.attribution import attribute_trace

        attributed = attribute_trace(trace_document(meta={"dataset": "unit-4^4"}))
        path = tmp_path / "measured.json"
        path.write_text(json.dumps(attributed, sort_keys=True))
        doc = load_trace(path)
        validate_trace(doc)

        assert doc["meta"]["dataset"] == "unit-4^4"
        flat: list[dict] = []

        def walk(spans):
            for s in spans:
                flat.append(s)
                walk(s["children"])

        walk(doc["spans"])
        names = {s["name"] for s in flat}
        assert {"mg.setup", "mg.solve", "smoother", "coarse-solve"} <= names
        costed = [s for s in flat if "flops" in s.get("attrs", {})]
        assert costed, "no span carried perf attribution through the disk trip"
        for s in costed:
            for key in ("gflops", "gbs", "arithmetic_intensity", "roofline_fraction"):
                assert key in s["attrs"], f"{s['name']} lost {key}"
        assert any(
            e["value"] > 0
            for e in doc["metrics"]["counter"].get("mg.op_applies", [])
        )
        # durations survive as floats, not strings
        assert all(isinstance(s["duration_s"], float) for s in flat)

        # and the loader rejects the same document once mangled
        bad = load_trace(path)
        bad["schema"] = "repro.telemetry/v0"
        with pytest.raises(ValueError):
            validate_trace(bad)
        bad2 = load_trace(path)
        bad2["spans"][0].pop("duration_s")
        with pytest.raises(ValueError):
            validate_trace(bad2)

    def test_disabled_telemetry_records_nothing_during_solve(self):
        telemetry.disable()
        telemetry.reset()
        mg = self._mg_solver()
        from tests.conftest import random_spinor
        from repro.lattice import Lattice

        res = mg.solve(random_spinor(Lattice((4, 4, 4, 4)), seed=6))
        assert telemetry.get_tracer().roots == []
        assert telemetry.get_registry().collect() == []
        assert res.telemetry.spans == []
        # the typed per-level profile is still populated (it is cheap)
        assert res.telemetry.level_stats[0]["op_applies"] > 0

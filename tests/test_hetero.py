"""Heterogeneous CPU/GPU placement policy (paper Sections 5 and 9)."""

import pytest

from repro.gpu.kernels import CoarseDslashKernel
from repro.machine import (
    MachineModel,
    OPTERON_6274,
    choose_placement,
    cpu_stencil_time,
    mg_level_specs,
    pcie_transfer_time,
)
from repro.workloads import ISO64


@pytest.fixture(scope="module")
def model():
    return MachineModel()


@pytest.fixture(scope="module")
def levels():
    return mg_level_specs(ISO64.dims, ISO64.blockings[64], [24, 32])


class TestCpuModel:
    def test_cpu_time_positive_and_bandwidth_bound(self):
        k = CoarseDslashKernel(volume=10**4, dof=48)
        t = cpu_stencil_time(OPTERON_6274, k)
        t_mem = k.total_bytes / (OPTERON_6274.stream_bandwidth_gbs * 1e9)
        assert t >= t_mem

    def test_no_parallelism_cliff(self):
        # CPU efficiency (time per site) is flat as the grid shrinks —
        # unlike the GPU baseline, per paper Section 5's motivation
        t_big = cpu_stencil_time(OPTERON_6274, CoarseDslashKernel(volume=4096, dof=48))
        t_small = cpu_stencil_time(OPTERON_6274, CoarseDslashKernel(volume=16, dof=48))
        per_site_big = t_big / 4096
        per_site_small = (t_small - OPTERON_6274.per_core_overhead_us * 1e-6) / 16
        assert per_site_small < 2 * per_site_big

    def test_gpu_wins_on_large_grids(self, model, levels):
        # at Titan-scale local volumes the GPU's 6x bandwidth dominates
        st = model.stencil_cost(levels[1], 64)
        import numpy as np

        from repro.machine import choose_proc_grid, local_dims

        grid = choose_proc_grid(levels[1].dims, 64)
        vol = int(np.prod(local_dims(levels[1].dims, grid)))
        k = CoarseDslashKernel(volume=vol, dof=levels[1].dof)
        assert st.kernel_s < cpu_stencil_time(OPTERON_6274, k)


class TestPlacement:
    def test_fine_level_always_gpu(self, model, levels):
        placement = choose_placement(model, levels, 64)
        assert placement[0].device == "gpu"

    def test_one_entry_per_level(self, model, levels):
        placement = choose_placement(model, levels, 128)
        assert [p.level for p in placement] == [0, 1, 2]

    def test_paper_conclusion_gpu_everywhere_on_titan(self, model, levels):
        # Section 6.7: "we achieve excellent performance maintaining the
        # entire calculation on the GPU" — with the fine-grained mapping
        # the K20X should win every level at the paper's node counts
        for nodes in (64, 512):
            placement = choose_placement(model, levels, nodes)
            assert all(p.device == "gpu" for p in placement), nodes

    def test_transfer_time_positive(self, levels):
        assert pcie_transfer_time(levels[1], 64) > 0

    def test_placement_times_recorded(self, model, levels):
        placement = choose_placement(model, levels, 64)
        for p in placement[1:]:
            assert p.gpu_time_s > 0 and p.cpu_time_s > 0

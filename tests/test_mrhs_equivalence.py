"""Batched-hierarchy == K-sequential equivalence layer.

The contract that makes "MRHS all the way down" safe: every batched
kernel — fine/coarse Schur complements, smoothers, transfers, the
K-cycle itself, and ``batched_mg_solve`` — must reproduce K independent
sequential runs to rounding error, for K in {1, 2, 3, 8}, including the
K=1 degenerate case and a ragged final batch.  Anything that drifts
from the sequential path is a numerics change, not an optimisation.

Run the group with ``pytest -q -m mrhs``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dirac import WilsonCloverOperator
from repro.dirac.even_odd import SchurOperator
from repro.dirac.mrhs import (
    BatchedCoarseSchur,
    BatchedSchur,
    batched_schur_for,
    supports_batched_schur,
    supports_dense_block_schur,
)
from repro.dirac.normal import AdjointOperator, NormalOperator
from repro.gauge import disordered_field
from repro.lattice import Lattice
from repro.mg import LevelParams, MGParams, MultigridSolver
from repro.mg.kcycle import KCyclePreconditioner, operator_application_cost_multi
from repro.mg.multi_rhs import (
    BatchedKCyclePreconditioner,
    BatchedSmoother,
    batched_mg_solve,
    batched_preconditioner_for,
    hierarchy_supports_batching,
)
from repro.solvers import (
    batched_gcr,
    block_cg,
    block_gcr,
    gcr,
    norm,
    sequential_gcr,
    validate_rhs_stack,
)
from tests.conftest import random_spinor
from tests.strategies import SEEDS, DenseOperator

pytestmark = pytest.mark.mrhs

K_CASES = (1, 2, 3, 8)


def stack_for(lattice, k: int, ns: int = 4, nc: int = 3, seed: int = 300):
    rng = np.random.default_rng(seed)
    shape = (k, lattice.volume, ns, nc)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


@pytest.fixture(scope="module")
def mg3():
    """A deterministic three-level hierarchy (the verified reference).

    4x4x4x8 disordered field, two coarsenings — deep enough that the
    batched K-cycle exercises recursion, BatchedCoarseSchur on the
    intermediate level, and the coarsest direct Schur solve.
    """
    lat = Lattice((4, 4, 4, 8))
    u = disordered_field(lat, np.random.default_rng(11), 0.55, smear_steps=1)
    op = WilsonCloverOperator(u, mass=-1.376, c_sw=1.0)
    params = MGParams(
        levels=[
            LevelParams(block=(2, 2, 2, 2), n_null=6, null_iters=30),
            LevelParams(block=(1, 1, 1, 2), n_null=4, null_iters=30),
        ],
        outer_tol=1e-8,
    )
    solver = MultigridSolver(op, params, np.random.default_rng(5))
    return op, solver


@pytest.fixture(scope="module")
def coarse_op(mg3):
    return mg3[1].hierarchy.levels[1].op


# ----------------------------------------------------------------------
# per-level operator equivalence
# ----------------------------------------------------------------------
class TestLevelOperators:
    @pytest.mark.parametrize("k", K_CASES)
    def test_fine_apply_multi(self, mg3, k):
        op, _ = mg3
        vs = stack_for(op.lattice, k, seed=300 + k)
        batched = op.apply_multi(vs)
        for i in range(k):
            np.testing.assert_allclose(batched[i], op.apply(vs[i]), atol=1e-12)

    @pytest.mark.parametrize("k", K_CASES)
    def test_coarse_apply_multi(self, coarse_op, k):
        mc = coarse_op
        vs = stack_for(mc.lattice, k, mc.ns, mc.nc, seed=310 + k)
        batched = mc.apply_multi(vs)
        for i in range(k):
            np.testing.assert_allclose(batched[i], mc.apply(vs[i]), atol=1e-11)

    @pytest.mark.parametrize("k", K_CASES)
    def test_fine_schur_apply(self, mg3, k):
        op, _ = mg3
        assert supports_batched_schur(op)
        bschur, schur = BatchedSchur(op), SchurOperator(op, parity=0)
        rng = np.random.default_rng(320 + k)
        shape = (k, op.lattice.half_volume, op.ns, op.nc)
        halves = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        batched = bschur.apply_multi(halves)
        for i in range(k):
            np.testing.assert_allclose(
                batched[i], schur.apply(halves[i]), atol=1e-12
            )

    @pytest.mark.parametrize("k", K_CASES)
    def test_coarse_schur_roundtrip(self, coarse_op, k):
        """BatchedCoarseSchur prepare/apply/reconstruct == SchurOperator."""
        mc = coarse_op
        assert supports_dense_block_schur(mc)
        bschur, schur = BatchedCoarseSchur(mc), SchurOperator(mc, parity=0)
        bs = stack_for(mc.lattice, k, mc.ns, mc.nc, seed=330 + k)
        prep = bschur.prepare_multi(bs)
        applied = bschur.apply_multi(prep)
        recon = bschur.reconstruct_multi(prep, bs)
        for i in range(k):
            np.testing.assert_allclose(
                prep[i], schur.prepare_source(bs[i]), atol=1e-12
            )
            np.testing.assert_allclose(
                applied[i], schur.apply(prep[i]), atol=1e-11
            )
            np.testing.assert_allclose(
                recon[i], schur.reconstruct(prep[i], bs[i]), atol=1e-11
            )

    def test_batched_schur_for_dispatch(self, mg3, coarse_op):
        op, _ = mg3
        assert isinstance(batched_schur_for(op), BatchedSchur)
        assert isinstance(batched_schur_for(coarse_op), BatchedCoarseSchur)

    @pytest.mark.parametrize("level", [0, 1])
    def test_smoother_matches_sequential(self, mg3, level):
        _, solver = mg3
        lev = solver.hierarchy.levels[level]
        batched = BatchedSmoother(lev.op, steps=4)
        rs = stack_for(lev.op.lattice, 3, lev.op.ns, lev.op.nc, seed=340 + level)
        zs = batched.apply_multi(rs)
        for i in range(3):
            np.testing.assert_allclose(
                zs[i], lev.smoother.apply(rs[i]), atol=1e-10
            )

    @pytest.mark.parametrize("level", [0, 1])
    @pytest.mark.parametrize("k", K_CASES)
    def test_transfer_multi(self, mg3, level, k):
        _, solver = mg3
        lev = solver.hierarchy.levels[level]
        t = lev.transfer
        fines = stack_for(lev.op.lattice, k, lev.op.ns, lev.op.nc, seed=350 + k)
        rc = t.restrict_multi(fines)
        for i in range(k):
            np.testing.assert_allclose(rc[i], t.restrict(fines[i]), atol=1e-12)
        back = t.prolong_multi(rc)
        for i in range(k):
            np.testing.assert_allclose(back[i], t.prolong(rc[i]), atol=1e-12)

    def test_adjoint_and_normal_apply_multi(self, mg3):
        op, _ = mg3
        vs = stack_for(op.lattice, 3, seed=360)
        adj, nrm = AdjointOperator(op), NormalOperator(op)
        badj, bnrm = adj.apply_multi(vs), nrm.apply_multi(vs)
        for i in range(3):
            np.testing.assert_allclose(badj[i], adj.apply(vs[i]), atol=1e-12)
            np.testing.assert_allclose(bnrm[i], nrm.apply(vs[i]), atol=1e-11)


# ----------------------------------------------------------------------
# hypothesis: batched Schur equivalence over drawn fields
# ----------------------------------------------------------------------
class TestSchurProperty:
    @given(seed=SEEDS, k=st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_fine_schur_property(self, seed, k):
        lat = Lattice((4, 4, 2, 2))
        rng = np.random.default_rng(seed)
        u = disordered_field(lat, rng, 0.4, smear_steps=1)
        op = WilsonCloverOperator(u, mass=-0.2, c_sw=1.0)
        bschur, schur = BatchedSchur(op), SchurOperator(op, parity=0)
        bs = np.asarray(
            rng.standard_normal((k, lat.volume, 4, 3))
            + 1j * rng.standard_normal((k, lat.volume, 4, 3))
        )
        prep = bschur.prepare_multi(bs)
        recon = bschur.reconstruct_multi(prep, bs)
        for i in range(k):
            np.testing.assert_allclose(
                prep[i], schur.prepare_source(bs[i]), atol=1e-11
            )
            np.testing.assert_allclose(
                recon[i], schur.reconstruct(prep[i], bs[i]), atol=1e-11
            )


# ----------------------------------------------------------------------
# full-depth K-cycle and solve equivalence
# ----------------------------------------------------------------------
class TestBatchedKCycle:
    def test_preconditioner_matches_sequential(self, mg3):
        op, solver = mg3
        batched = BatchedKCyclePreconditioner(solver.hierarchy)
        seq = KCyclePreconditioner(solver.hierarchy)
        rs = stack_for(op.lattice, 4, seed=370)
        zs = batched.apply_multi(rs)
        for i in range(4):
            z_seq = seq.apply(rs[i])
            assert norm(zs[i] - z_seq) / norm(z_seq) < 1e-10

    def test_solve_matches_sequential(self, mg3):
        op, solver = mg3
        bs = stack_for(op.lattice, 4, seed=380)
        batched = batched_mg_solve(solver.hierarchy, bs, tol=1e-8)
        for res, b in zip(batched, bs):
            seq = solver.solve(b, tol=1e-8)
            assert res.converged and seq.converged
            assert res.iterations == seq.iterations
            assert norm(res.x - seq.x) / norm(seq.x) < 1e-10

    def test_k1_degenerate(self, mg3):
        """A batch of one is exactly the sequential solve."""
        op, solver = mg3
        b = random_spinor(op.lattice, seed=385)
        res_b = batched_mg_solve(solver.hierarchy, b[None], tol=1e-8)[0]
        res_s = solver.solve(b, tol=1e-8)
        assert res_b.iterations == res_s.iterations
        assert norm(res_b.x - res_s.x) / max(norm(res_s.x), 1e-300) < 1e-12

    def test_ragged_final_batch(self, mg3):
        """7 RHS split 4+3 equals the same 7 solved in one batch."""
        op, solver = mg3
        bs = stack_for(op.lattice, 7, seed=390)
        whole = batched_mg_solve(solver.hierarchy, bs, tol=1e-8)
        chunked = list(
            batched_mg_solve(solver.hierarchy, bs[:4], tol=1e-8)
        ) + list(batched_mg_solve(solver.hierarchy, bs[4:], tol=1e-8))
        for rw, rc in zip(whole, chunked):
            assert rw.iterations == rc.iterations
            assert norm(rw.x - rc.x) / norm(rc.x) < 1e-12

    def test_level_stats_in_telemetry(self, mg3):
        op, solver = mg3
        bs = stack_for(op.lattice, 2, seed=395)
        results = batched_mg_solve(solver.hierarchy, bs, tol=1e-8)
        stats = results[0].telemetry.level_stats
        assert set(stats) == {0, 1, 2}
        assert stats[1]["op_applies"] > 0
        assert stats[2]["op_applies"] > 0


# ----------------------------------------------------------------------
# batching-support predicates and caching
# ----------------------------------------------------------------------
class TestSupportPredicates:
    def test_three_level_hierarchy_supported(self, mg3):
        assert hierarchy_supports_batching(mg3[1].hierarchy)

    def test_chebyshev_smoother_not_supported(self, mg3):
        op, _ = mg3
        params = MGParams(
            levels=[LevelParams(block=(2, 2, 2, 4), n_null=4, null_iters=10)],
            smoother_type="chebyshev",
        )
        solver = MultigridSolver(op, params, np.random.default_rng(2))
        assert not hierarchy_supports_batching(solver.hierarchy)

    def test_preconditioner_is_cached(self, mg3):
        h = mg3[1].hierarchy
        assert batched_preconditioner_for(h) is batched_preconditioner_for(h)


# ----------------------------------------------------------------------
# block-Krylov outer solvers
# ----------------------------------------------------------------------
class TestBlockGCR:
    def test_matches_gcr_solutions(self, wilson44, lat44):
        bs = np.stack([random_spinor(lat44, seed=500 + i) for i in range(3)])
        blk = block_gcr(wilson44, bs, tol=1e-9, maxiter=500)
        for res, b in zip(blk, bs):
            assert res.converged
            seq = gcr(wilson44, b, tol=1e-9, maxiter=500)
            assert norm(res.x - seq.x) / norm(seq.x) < 1e-5

    def test_shared_space_beats_lockstep(self, wilson44, lat44):
        """The block Krylov space serves every RHS: batches <= worst seq."""
        bs = np.stack([random_spinor(lat44, seed=510 + i) for i in range(4)])
        blk = block_gcr(wilson44, bs, tol=1e-8, maxiter=500)
        seq = sequential_gcr(wilson44, bs, tol=1e-8, maxiter=500)
        assert all(r.converged for r in blk)
        assert blk[0].extra["matvec_batches"] <= max(r.iterations for r in seq)

    def test_rank_deficient_duplicates(self, wilson44, lat44):
        """Duplicate RHS columns are dropped by the QR, not fatal."""
        b = random_spinor(lat44, seed=520)
        bs = np.stack([b, b, b])
        blk = block_gcr(wilson44, bs, tol=1e-8, maxiter=500)
        assert all(r.converged for r in blk)
        np.testing.assert_array_equal(blk[0].x, blk[1].x)
        np.testing.assert_array_equal(blk[0].x, blk[2].x)

    def test_zero_rhs_in_block(self, wilson44, lat44):
        bs = np.stack([random_spinor(lat44, seed=530), np.zeros_like(
            random_spinor(lat44))])
        blk = block_gcr(wilson44, bs, tol=1e-8, maxiter=500)
        assert blk[1].converged and norm(blk[1].x) == 0.0


class TestBlockCG:
    def test_spd_dense_matches_direct(self):
        rng = np.random.default_rng(3)
        n, k = 24, 3
        a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        a = a @ a.conj().T + n * np.eye(n)
        op = DenseOperator(a)
        bs = rng.standard_normal((k, 1, 1, n)) + 1j * rng.standard_normal(
            (k, 1, 1, n)
        )
        blk = block_cg(op, bs, tol=1e-10, maxiter=200)
        for res, b in zip(blk, bs):
            assert res.converged
            direct = np.linalg.solve(a, b.reshape(-1))
            assert np.linalg.norm(res.x.reshape(-1) - direct) < 1e-7

    def test_duplicate_columns(self):
        rng = np.random.default_rng(4)
        n = 16
        a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        a = a @ a.conj().T + n * np.eye(n)
        b = rng.standard_normal((1, 1, n)) + 1j * rng.standard_normal((1, 1, n))
        blk = block_cg(DenseOperator(a), np.stack([b, b]), tol=1e-10,
                       maxiter=200)
        assert all(r.converged for r in blk)
        np.testing.assert_allclose(blk[0].x, blk[1].x, atol=1e-12)

    def test_shares_matvec_batches(self):
        rng = np.random.default_rng(5)
        n, k = 32, 4
        a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        a = a @ a.conj().T + n * np.eye(n)
        bs = rng.standard_normal((k, 1, 1, n)) + 1j * rng.standard_normal(
            (k, 1, 1, n)
        )
        blk = block_cg(DenseOperator(a), bs, tol=1e-10, maxiter=200)
        assert all(r.converged for r in blk)
        assert blk[0].extra["matvec_batches"] <= n


# ----------------------------------------------------------------------
# shape validation: malformed stacks fail loudly
# ----------------------------------------------------------------------
class TestShapeValidation:
    def test_one_dimensional_stack_rejected(self, wilson44):
        with pytest.raises(ValueError, match="stack"):
            validate_rhs_stack(wilson44, np.zeros(12, dtype=np.complex128))

    @pytest.mark.parametrize(
        "solver_fn", [batched_gcr, block_gcr, block_cg],
        ids=["batched_gcr", "block_gcr", "block_cg"],
    )
    def test_wrong_site_shape_rejected(self, wilson44, lat44, solver_fn):
        bad = np.zeros((2, lat44.volume, 4, 2), dtype=np.complex128)  # nc=2
        with pytest.raises(ValueError, match="does not match operator"):
            solver_fn(wilson44, bad, tol=1e-8, maxiter=10)

    def test_batched_mg_solve_rejects_wrong_volume(self, mg3):
        _, solver = mg3
        bad = np.zeros((2, 7, 4, 3), dtype=np.complex128)
        with pytest.raises(ValueError, match="does not match operator"):
            batched_mg_solve(solver.hierarchy, bad, tol=1e-8)


# ----------------------------------------------------------------------
# cost model: batching moves levels toward the bandwidth ceiling
# ----------------------------------------------------------------------
class TestCostModel:
    @staticmethod
    def _intensity(cost):
        flops, nbytes = cost
        return flops / nbytes

    def test_fine_intensity_rises_with_k(self, mg3):
        op, _ = mg3
        ai1 = self._intensity(op.application_cost_multi(1))
        ai8 = self._intensity(op.application_cost_multi(8))
        assert ai8 > ai1
        np.testing.assert_allclose(
            op.application_cost_multi(1)[0] * 8, op.application_cost_multi(8)[0]
        )

    def test_coarse_intensity_rises_with_k(self, coarse_op):
        ai1 = self._intensity(coarse_op.application_cost_multi(1))
        ai8 = self._intensity(coarse_op.application_cost_multi(8))
        # coarse dof blocks are dense: matrix traffic dominates at K=1,
        # so batching buys a large arithmetic-intensity gain
        assert ai8 > 2 * ai1

    def test_transfer_cost_multi(self, mg3):
        _, solver = mg3
        t = solver.hierarchy.levels[0].transfer
        f1, b1 = t.application_cost_multi(1)
        f8, b8 = t.application_cost_multi(8)
        np.testing.assert_allclose(f8, 8 * f1)
        assert b8 < 8 * b1  # basis read once for the whole batch

    def test_operator_cost_multi_fallback(self, mg3):
        """Operators without the hook cost k x the single-RHS numbers."""

        class Plain:
            def application_cost(self):
                return (10.0, 100.0)

        assert operator_application_cost_multi(Plain(), 4) == (40.0, 400.0)
        op, _ = mg3
        assert (
            operator_application_cost_multi(op, 4)
            == op.application_cost_multi(4)
        )

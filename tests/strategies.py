"""Shared hypothesis strategies for the lattice-QCD test suite.

Centralizes random generation of the domain objects (lattice
geometries, SU(3) gauge fields, spinors, Wilson-Clover operators, MG
configurations, dense linear systems) so property tests across modules
draw from the same, shrinkable distributions.  Everything is seeded
through drawn integers + ``np.random.default_rng`` so failures replay
deterministically from the hypothesis shrink output.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.backend import available_backends
from repro.dirac import WilsonCloverOperator
from repro.gauge import disordered_field, random_su3
from repro.lattice import Lattice
from repro.mg.params import LevelParams, MGParams

# Keep drawn lattices tiny: every extent even (red-black needs it),
# volume <= 4*4*4*8 so a Wilson apply stays in the millisecond range.
_EXTENTS = (2, 4)
_MAX_VOLUME = 512

SEEDS = st.integers(0, 2**32 - 1)


@st.composite
def lattices(draw, max_volume: int = _MAX_VOLUME):
    """A small 4D lattice with even extents."""
    while True:
        dims = tuple(draw(st.sampled_from(_EXTENTS)) for _ in range(4))
        if int(np.prod(dims)) <= max_volume:
            return Lattice(dims)


@st.composite
def su3_matrices(draw, n: int = 8):
    """A batch of ``n`` random SU(3) matrices, shape (n, 3, 3)."""
    rng = np.random.default_rng(draw(SEEDS))
    return random_su3(rng, n)


@st.composite
def gauge_fields(draw, lattice: Lattice | None = None):
    """A disordered (but smoothed) SU(3) gauge field."""
    lat = lattice if lattice is not None else draw(lattices())
    rng = np.random.default_rng(draw(SEEDS))
    disorder = draw(st.floats(0.2, 0.7))
    return disordered_field(lat, rng, disorder, smear_steps=1)


@st.composite
def spinors(draw, lattice: Lattice, ns: int = 4, nc: int = 3):
    """A complex Gaussian spinor field array of shape (V, ns, nc)."""
    rng = np.random.default_rng(draw(SEEDS))
    shape = (lattice.volume, ns, nc)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


@st.composite
def site_fields(draw, lattice: Lattice | None = None, max_k: int = 4):
    """A ``(K, V, ns, nc)`` complex field stack with drawn internal dof.

    Internal degrees of freedom cover both the fine-grid (4, 3) shape
    and coarse-grid (2, nc_hat) shapes, so layout properties (packing,
    parity masks) are exercised for every operator family.
    """
    lat = lattice if lattice is not None else draw(lattices())
    ns = draw(st.sampled_from([2, 4]))
    nc = draw(st.integers(1, 4))
    k = draw(st.integers(1, max_k))
    rng = np.random.default_rng(draw(SEEDS))
    shape = (k, lat.volume, ns, nc)
    return lat, rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


def backend_names(include_baseline: bool = True):
    """Strategy over registered backend names (optional ones included)."""
    names = available_backends()
    if not include_baseline:
        names = tuple(n for n in names if n != "numpy")
    return st.sampled_from(names)


@st.composite
def wilson_operators(draw, lattice: Lattice | None = None):
    """A Wilson-Clover operator on a drawn gauge field.

    The mass stays in a mildly-negative band (the physically relevant
    regime) but safely away from criticality, so drawn operators remain
    comfortably invertible.
    """
    gauge = draw(gauge_fields(lattice=lattice))
    mass = draw(st.floats(-0.3, 0.3))
    c_sw = draw(st.sampled_from([0.0, 1.0]))
    return WilsonCloverOperator(gauge, mass=mass, c_sw=c_sw)


@st.composite
def mg_params(draw, lattice: Lattice | None = None):
    """A one-coarsening MGParams whose block tiles ``lattice``.

    Drawing the lattice too keeps (lattice, params) consistent; the
    pair is returned so callers can build the matching operator.
    """
    lat = lattice if lattice is not None else draw(lattices())
    # coarse extents must stay even (red-black on the coarse level), so
    # a direction is blocked by 2 only when it has at least 4 sites
    block = tuple(2 if e >= 4 else 1 for e in lat.dims)
    params = MGParams(
        levels=[
            LevelParams(
                block=block,
                n_null=draw(st.sampled_from([2, 4])),
                null_iters=draw(st.integers(5, 20)),
            )
        ],
        outer_tol=1e-6,
    )
    return lat, params


class DenseOperator:
    """A dense matrix behind the package's operator interface."""

    def __init__(self, mat: np.ndarray):
        self.mat = mat
        self.ns = 1
        self.nc = mat.shape[0]

    def apply(self, v: np.ndarray) -> np.ndarray:
        return (self.mat @ v.reshape(-1)).reshape(v.shape)

    matvec = apply

    def apply_multi(self, vs: np.ndarray) -> np.ndarray:
        k = vs.shape[0]
        return (self.mat @ vs.reshape(k, -1).T).T.reshape(vs.shape)

    def gamma5_diag(self):
        return np.ones(1)


@st.composite
def dense_systems(draw, kind: str = "general", max_n: int = 24):
    """A random dense system ``(DenseOperator, b)``.

    ``kind``:
      * ``"spd"`` — hermitian positive definite (CG territory),
      * ``"hermitian_indefinite"`` — hermitian with both signs in the
        spectrum (full-subspace GCR/GMRES territory),
      * ``"general"`` — diagonally dominated non-hermitian (BiCGStab).
    """
    n = draw(st.integers(4, max_n))
    rng = np.random.default_rng(draw(SEEDS))
    a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    if kind == "spd":
        a = a @ a.conj().T + n * np.eye(n)
    elif kind == "hermitian_indefinite":
        h = 0.5 * (a + a.conj().T)
        evals, evecs = np.linalg.eigh(h)
        # push every eigenvalue away from zero, keeping its sign; make
        # sure at least one of each sign exists
        evals = np.sign(evals) * (np.abs(evals) + 1.0)
        evals[0] = -abs(evals[0])
        evals[-1] = abs(evals[-1])
        a = (evecs * evals) @ evecs.conj().T
    elif kind == "general":
        a = a + (2.0 * n) * np.eye(n)
    else:
        raise ValueError(f"unknown dense system kind {kind!r}")
    b = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    return DenseOperator(a), b

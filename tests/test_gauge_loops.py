"""Wilson loops, field strength, and gauge covariance."""

import numpy as np
import pytest

from repro.fields import GaugeField
from repro.gauge import (
    average_plaquette,
    clover_leaves,
    dagger,
    disordered_field,
    field_strength,
    free_field,
    plaquette_field,
    random_su3,
)
from repro.lattice import NDIM


def gauge_transform(u: GaugeField, g: np.ndarray) -> GaugeField:
    """U'_mu(x) = g(x) U_mu(x) g(x + mu)^dag."""
    lat = u.lattice
    data = np.empty_like(u.data)
    for mu in range(NDIM):
        data[mu] = g @ u.data[mu] @ dagger(g[lat.fwd[mu]])
    return GaugeField(lat, data)


@pytest.fixture(scope="module")
def transform(lat44):
    return random_su3(np.random.default_rng(42), lat44.volume)


class TestPlaquette:
    def test_plaquette_is_unitary(self, gauge44):
        p = plaquette_field(gauge44, 0, 1)
        assert np.abs(p @ dagger(p) - np.eye(3)).max() < 1e-12

    def test_average_plaquette_bounds(self, gauge44):
        p = average_plaquette(gauge44)
        assert -1.0 <= p <= 1.0

    def test_gauge_invariance(self, gauge44, transform):
        before = average_plaquette(gauge44)
        after = average_plaquette(gauge_transform(gauge44, transform))
        assert after == pytest.approx(before, abs=1e-12)


class TestCloverLeaves:
    def test_free_field_leaves(self, lat44):
        q = clover_leaves(free_field(lat44), 0, 1)
        np.testing.assert_allclose(
            q, np.broadcast_to(4 * np.eye(3), q.shape), atol=1e-14
        )

    def test_mu_nu_antisymmetry_of_field_strength(self, gauge44):
        f01 = field_strength(gauge44, 0, 1)
        f10 = field_strength(gauge44, 1, 0)
        np.testing.assert_allclose(f01, -f10, atol=1e-12)


class TestFieldStrength:
    def test_antihermitian_traceless(self, gauge44):
        for mu, nu in [(0, 1), (1, 3), (2, 3)]:
            f = field_strength(gauge44, mu, nu)
            assert np.abs(f + dagger(f)).max() < 1e-13
            assert np.abs(np.einsum("nii->n", f)).max() < 1e-13

    def test_vanishes_on_free_field(self, lat44):
        f = field_strength(free_field(lat44), 0, 3)
        assert np.abs(f).max() < 1e-14

    def test_gauge_covariance(self, gauge44, transform):
        # F'(x) = g(x) F(x) g(x)^dag
        f = field_strength(gauge44, 0, 2)
        fp = field_strength(gauge_transform(gauge44, transform), 0, 2)
        expect = transform @ f @ dagger(transform)
        np.testing.assert_allclose(fp, expect, atol=1e-12)

    def test_grows_with_disorder(self, lat44):
        small = disordered_field(lat44, np.random.default_rng(1), 0.1)
        large = disordered_field(lat44, np.random.default_rng(1), 0.6)
        fs = np.abs(field_strength(small, 0, 1)).mean()
        fl = np.abs(field_strength(large, 0, 1)).mean()
        assert fl > fs

"""Quenched SU(3) heatbath generation."""

import numpy as np
import pytest

from repro.gauge import average_plaquette
from repro.gauge.heatbath import (
    _kennedy_pendleton,
    _su2_from_quaternion,
    _su2_project,
    heatbath_sweep,
    quenched_ensemble,
)
from repro.lattice import Lattice


@pytest.fixture(scope="module")
def lat():
    return Lattice((4, 4, 4, 4))


class TestSU2Machinery:
    def test_quaternion_gives_su2(self):
        rng = np.random.default_rng(0)
        q = rng.standard_normal((20, 4))
        q /= np.linalg.norm(q, axis=1, keepdims=True)
        m = _su2_from_quaternion(q)
        eye = np.eye(2)
        assert np.abs(m @ np.conj(np.swapaxes(m, -1, -2)) - eye).max() < 1e-13
        assert np.abs(np.linalg.det(m) - 1).max() < 1e-13

    def test_su2_project_recovers_su2_input(self):
        rng = np.random.default_rng(1)
        q = rng.standard_normal((10, 4))
        q /= np.linalg.norm(q, axis=1, keepdims=True)
        m = _su2_from_quaternion(q)
        k, v = _su2_project(3.7 * m)
        np.testing.assert_allclose(k, 3.7, rtol=1e-12)
        np.testing.assert_allclose(v, m, atol=1e-12)

    def test_kennedy_pendleton_distribution(self):
        # mean of a0 under ~ sqrt(1-a0^2) exp(x a0) grows with x and
        # approaches 1 for large x
        rng = np.random.default_rng(2)
        m_small = _kennedy_pendleton(np.full(4000, 0.5), rng).mean()
        m_large = _kennedy_pendleton(np.full(4000, 20.0), rng).mean()
        assert -1 <= m_small <= 1
        assert m_large > m_small
        assert m_large > 0.85

    def test_kennedy_pendleton_range(self):
        rng = np.random.default_rng(3)
        a0 = _kennedy_pendleton(np.full(2000, 2.0), rng)
        assert a0.min() >= -1.0 and a0.max() <= 1.0


class TestHeatbath:
    def test_links_stay_su3(self, lat):
        u = quenched_ensemble(lat, 5.7, np.random.default_rng(4), n_thermalize=3)
        assert u.unitarity_violation() < 1e-12
        assert u.determinant_violation() < 1e-12

    def test_plaquette_monotone_in_beta(self, lat):
        plaqs = [
            average_plaquette(
                quenched_ensemble(lat, beta, np.random.default_rng(5), 12)
            )
            for beta in (1.0, 5.7, 12.0)
        ]
        assert plaqs[0] < plaqs[1] < plaqs[2]

    def test_literature_plaquette_at_beta57(self, lat):
        # SU(3) Wilson action at beta = 5.7: plaquette ~ 0.55
        u = quenched_ensemble(lat, 5.7, np.random.default_rng(6), 20)
        assert 0.45 < average_plaquette(u) < 0.62

    def test_hot_and_cold_starts_converge(self, lat):
        hot = quenched_ensemble(lat, 5.7, np.random.default_rng(7), 25, start="hot")
        cold = quenched_ensemble(lat, 5.7, np.random.default_rng(8), 25, start="cold")
        assert abs(average_plaquette(hot) - average_plaquette(cold)) < 0.05

    def test_bad_start_rejected(self, lat):
        with pytest.raises(ValueError):
            quenched_ensemble(lat, 5.7, np.random.default_rng(9), 1, start="warm")

    def test_sweep_moves_toward_equilibrium(self, lat):
        # from a hot start at high beta the plaquette must rise sweep by sweep
        from repro.gauge.generate import hot_start

        u = hot_start(lat, np.random.default_rng(10))
        p0 = average_plaquette(u)
        u = heatbath_sweep(u, 8.0, np.random.default_rng(11))
        p1 = average_plaquette(u)
        u = heatbath_sweep(u, 8.0, np.random.default_rng(12))
        p2 = average_plaquette(u)
        assert p0 < p1 < p2

    def test_usable_with_dirac_operator(self, lat):
        from repro.dirac import WilsonCloverOperator
        from repro.solvers import bicgstab

        u = quenched_ensemble(lat, 6.0, np.random.default_rng(13), 10)
        op = WilsonCloverOperator(u, mass=-0.3, c_sw=1.0)
        rng = np.random.default_rng(14)
        b = rng.standard_normal((lat.volume, 4, 3)) + 1j * rng.standard_normal(
            (lat.volume, 4, 3)
        )
        res = bicgstab(op, b, tol=1e-8, maxiter=5000)
        assert res.converged

"""The GPU performance model and the Figure 2 invariants."""

import math

import pytest

from repro.gpu import (
    Autotuner,
    BlasKernel,
    CoarseDslashKernel,
    K20X,
    M40,
    ReductionKernel,
    Strategy,
    ThreadMapping,
    TransferKernel,
    WilsonCloverDslashKernel,
    candidate_mappings,
    stencil_kernel_time,
    streaming_kernel_time,
)

STRATEGY_ORDER = [
    Strategy.BASELINE,
    Strategy.COLOR_SPIN,
    Strategy.STENCIL_DIRECTION,
    Strategy.DOT_PRODUCT,
]


@pytest.fixture(scope="module")
def tuner():
    return Autotuner(K20X)


def tuned_gflops(tuner, length, nc, strategy):
    k = CoarseDslashKernel(volume=length**4, dof=2 * nc)
    return tuner.tune_stencil(k, strategy).timing.gflops


class TestDeviceSpecs:
    def test_k20x_peak(self):
        assert K20X.peak_gflops == pytest.approx(3935.2, rel=1e-3)

    def test_kepler_latency_higher_than_maxwell(self):
        assert K20X.dep_latency > M40.dep_latency

    def test_issue_width(self):
        assert K20X.issue_width == 6.0


class TestKernelDescriptions:
    def test_coarse_arithmetic_intensity_near_one(self):
        # Section 6.5: AI of the coarse operator is close to unity in FP32
        k = CoarseDslashKernel(volume=1000, dof=48)
        ai = k.total_flops / k.total_bytes
        assert 0.9 < ai < 1.1

    def test_coarse_flops_scale_quadratically(self):
        f24 = CoarseDslashKernel(volume=16, dof=48).total_flops
        f32 = CoarseDslashKernel(volume=16, dof=64).total_flops
        assert f32 / f24 == pytest.approx((64 / 48) ** 2, rel=0.05)

    def test_wilson_flop_count(self):
        k = WilsonCloverDslashKernel(volume=100)
        assert k.flops_per_site == 1824.0
        assert WilsonCloverDslashKernel(volume=100, clover=False).flops_per_site == 1320.0

    def test_compression_reduces_traffic(self):
        b12 = WilsonCloverDslashKernel(volume=100, reconstruct=12).total_bytes
        b8 = WilsonCloverDslashKernel(volume=100, reconstruct=8).total_bytes
        assert b8 < b12

    def test_half_precision_halves_traffic(self):
        b4 = WilsonCloverDslashKernel(volume=100, precision_bytes=4.0).total_bytes
        b2 = WilsonCloverDslashKernel(volume=100, precision_bytes=2.0).total_bytes
        assert b2 == pytest.approx(b4 / 2)


class TestMappings:
    def test_baseline_has_no_fine_grained_candidates(self):
        cands = candidate_mappings(Strategy.BASELINE, 16, 48)
        assert all(m.dof_split == 1 and m.dir_split == 1 and m.dot_split == 1 for m in cands)

    def test_dot_product_strategy_widens_space(self):
        base = candidate_mappings(Strategy.BASELINE, 16, 48)
        dot = candidate_mappings(Strategy.DOT_PRODUCT, 16, 48)
        assert len(dot) > len(base)
        assert any(m.dot_split > 1 for m in dot)

    def test_block_limit_respected(self):
        for m in candidate_mappings(Strategy.DOT_PRODUCT, 16, 64, 1024):
            assert m.block_threads() <= 1024

    def test_threads_per_site(self):
        m = ThreadMapping(block_x=4, dof_split=8, dir_split=2, dot_split=2)
        assert m.threads_per_site() == 32
        assert m.block_threads() == 128


class TestFigure2Invariants:
    def test_plateau_near_80pct_stream(self, tuner):
        # saturated performance ~ 140 GFLOPS = 80% of STREAM (Section 6.5)
        g = tuned_gflops(tuner, 10, 24, Strategy.DOT_PRODUCT)
        assert 120 < g < 150

    def test_strategies_cumulative(self, tuner):
        # each added source of parallelism can only help (autotuner takes
        # the best over a superset of candidates)
        for length in (10, 8, 6, 4, 2):
            for nc in (24, 32):
                vals = [tuned_gflops(tuner, length, nc, s) for s in STRATEGY_ORDER]
                for a, b in zip(vals, vals[1:]):
                    assert b >= a * 0.999, (length, nc, vals)

    def test_baseline_collapses_on_small_grids(self, tuner):
        g10 = tuned_gflops(tuner, 10, 24, Strategy.BASELINE)
        g2 = tuned_gflops(tuner, 2, 24, Strategy.BASELINE)
        assert g2 < g10 / 50

    def test_fine_grained_rescues_small_grids(self, tuner):
        base = tuned_gflops(tuner, 2, 32, Strategy.BASELINE)
        full = tuned_gflops(tuner, 2, 32, Strategy.DOT_PRODUCT)
        # the paper's ~100x claim (Section 6.5)
        assert 50 < full / base < 250

    def test_two4_not_saturated(self, tuner):
        # "on the 2^4 lattice ... even then performance is not saturated"
        plateau = tuned_gflops(tuner, 10, 32, Strategy.DOT_PRODUCT)
        g2 = tuned_gflops(tuner, 2, 32, Strategy.DOT_PRODUCT)
        assert g2 < 0.6 * plateau

    def test_color_spin_saturates_mid_sizes(self, tuner):
        # "For all but the smallest lattice size, the addition of
        # color-spin parallelization is enough to saturate performance"
        g = tuned_gflops(tuner, 6, 24, Strategy.COLOR_SPIN)
        plateau = tuned_gflops(tuner, 10, 24, Strategy.DOT_PRODUCT)
        assert g > 0.8 * plateau

    def test_wilson_clover_much_faster_than_coarse(self, tuner):
        # Section 6.5: the Wilson-Clover operator sustains ~400 GFLOPS
        # (half precision, 8-real reconstruction, as run in Section 7)
        # vs ~140 for the coarse operator: ~3x from the retained tensor
        # structure and compression
        wk = WilsonCloverDslashKernel(volume=24**4, precision_bytes=2.0, reconstruct=8)
        wt = stencil_kernel_time(K20X, wk, ThreadMapping(block_x=128))
        ck = tuned_gflops(tuner, 10, 24, Strategy.DOT_PRODUCT)
        assert 2.0 * ck < wt.gflops < 4.5 * ck
        assert 350 < wt.gflops < 520


class TestModelMechanics:
    def test_memory_bound_on_large_grids(self, tuner):
        k = CoarseDslashKernel(volume=10**4, dof=48)
        r = tuner.tune_stencil(k, Strategy.DOT_PRODUCT)
        assert r.timing.bound == "memory"

    def test_autotuner_caches(self, tuner):
        k = CoarseDslashKernel(volume=16, dof=48)
        a = tuner.tune_stencil(k, Strategy.DOT_PRODUCT)
        b = tuner.tune_stencil(k, Strategy.DOT_PRODUCT)
        assert a is b

    def test_ilp_helps_latency_bound_kernels(self):
        k = CoarseDslashKernel(volume=16, dof=64)
        t1 = stencil_kernel_time(K20X, k, ThreadMapping(4, 16, 1, 1, ilp=1))
        t2 = stencil_kernel_time(K20X, k, ThreadMapping(4, 16, 1, 1, ilp=2))
        assert t2.time_s <= t1.time_s

    def test_maxwell_less_latency_sensitive(self):
        # the Kepler/Maxwell dependent-latency contrast of Section 6.4
        k = CoarseDslashKernel(volume=16, dof=48)
        m = ThreadMapping(1, 16, 1, 1, ilp=1)
        frac_k = stencil_kernel_time(K20X, k, m).gflops / K20X.peak_gflops
        frac_m = stencil_kernel_time(M40, k, m).gflops / M40.peak_gflops
        assert frac_m >= frac_k

    def test_streaming_kernels_scale_with_bytes(self):
        small = streaming_kernel_time(K20X, BlasKernel(n_complex=10**5))
        large = streaming_kernel_time(K20X, BlasKernel(n_complex=10**7))
        assert large > small

    def test_reduction_kernel_time_positive(self):
        assert streaming_kernel_time(K20X, ReductionKernel(n_complex=10**5)) > 0

    def test_transfer_kernel_time_positive(self):
        k = TransferKernel(fine_volume=4096, fine_dof=12, coarse_dof=48)
        assert streaming_kernel_time(K20X, k) > 0

    def test_gflops_consistency(self, tuner):
        k = CoarseDslashKernel(volume=6**4, dof=48)
        r = tuner.tune_stencil(k, Strategy.COLOR_SPIN)
        assert r.timing.gflops == pytest.approx(
            k.total_flops / r.timing.time_s / 1e9
        )

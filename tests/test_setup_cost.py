"""Multigrid setup cost pricing and amortization."""

import pytest

from repro.machine import MachineModel, bicgstab_time, mg_level_specs, mg_time
from repro.machine.setup_cost import amortization_solves, mg_setup_time
from repro.reporting.experiments import synthetic_level_profile
from repro.workloads import ISO64


@pytest.fixture(scope="module")
def priced():
    model = MachineModel()
    levels = mg_level_specs(ISO64.dims, ISO64.blockings[64], [24, 32])
    setup = mg_setup_time(model, levels, 64, [24, 32], null_iters=100)
    bt = bicgstab_time(model, levels[0], 64, 2805)
    mt = mg_time(model, levels, 64, synthetic_level_profile(17), 17)
    return setup, bt, mt


class TestSetupCost:
    def test_positive_components(self, priced):
        setup, _, _ = priced
        assert setup.null_vector_s > 0 and setup.galerkin_s > 0
        assert setup.total_s == pytest.approx(setup.null_vector_s + setup.galerkin_s)

    def test_null_generation_dominates(self, priced):
        # 100 relaxation iterations per vector dwarf the Galerkin product
        setup, _, _ = priced
        assert setup.null_vector_s > setup.galerkin_s

    def test_setup_worth_tens_of_solves(self, priced):
        # the setup costs the equivalent of a modest number of MG solves
        setup, _, mt = priced
        ratio = setup.total_s / mt.total_s
        assert 1 < ratio < 500


class TestAmortization:
    def test_small_against_paper_workloads(self, priced):
        # O(1e5)-O(1e6) solves per configuration (Section 7.1): the
        # break-even must be orders of magnitude below that
        setup, bt, mt = priced
        n = amortization_solves(setup.total_s, bt.total_s, mt.total_s)
        assert n < 100

    def test_infinite_when_mg_slower(self):
        assert amortization_solves(10.0, 1.0, 2.0) == float("inf")

    def test_linear_in_setup(self):
        a = amortization_solves(10.0, 3.0, 1.0)
        b = amortization_solves(20.0, 3.0, 1.0)
        assert b == pytest.approx(2 * a)

"""The Wilson-Clover operator: structure, symmetries, covariance."""

import numpy as np
import pytest

from repro.dirac import WilsonCloverOperator
from repro.fields import GaugeField
from repro.gauge import dagger, free_field, random_su3
from repro.lattice import NDIM, Lattice
from tests.conftest import random_spinor
from tests.test_gauge_loops import gauge_transform


def g5_apply(op, v):
    return op.apply_gamma5(v)


class TestFreeField:
    def test_constant_mode_eigenvalue(self, lat44):
        m = WilsonCloverOperator(free_field(lat44), mass=0.25, antiperiodic_t=False)
        c = np.ones((lat44.volume, 4, 3), dtype=complex)
        np.testing.assert_allclose(m.apply(c), 0.25 * c, atol=1e-13)

    def test_plane_wave_eigenvalue(self, lat44):
        # Wilson eigenvalues: m + sum_mu (1 - cos p_mu) + i gamma.sin p
        # check the norm through the dispersion relation for p=(pi/2,0,0,0)
        m0 = 0.3
        op = WilsonCloverOperator(free_field(lat44), mass=m0, antiperiodic_t=False)
        x = lat44.site_coords[:, 0]
        phase = np.exp(1j * np.pi / 2 * x)
        v = np.zeros((lat44.volume, 4, 3), dtype=complex)
        v[:, 0, 0] = phase
        out = op.apply(v)
        # expected: [(m + (1-cos p)) + i gamma_x sin p] acting on spin 0
        expect_diag = m0 + 1.0  # 1 - cos(pi/2) = 1
        # |M v|^2 = (expect_diag^2 + sin^2 p) |v|^2
        got = np.linalg.norm(out.ravel()) ** 2 / np.linalg.norm(v.ravel()) ** 2
        assert got == pytest.approx(expect_diag**2 + 1.0, rel=1e-12)

    def test_clover_vanishes_on_free_field(self, lat44):
        op = WilsonCloverOperator(free_field(lat44), mass=0.1, c_sw=1.0)
        assert np.abs(op.clover.blocks).max() < 1e-14


class TestStructure:
    def test_apply_equals_diag_plus_hops(self, wilson44, spinor44):
        composed = wilson44.apply_diag(spinor44) + wilson44.apply_hopping(spinor44)
        np.testing.assert_allclose(wilson44.apply(spinor44), composed, atol=1e-12)

    def test_hopping_flips_parity(self, wilson44, lat44):
        v = random_spinor(lat44, seed=11)
        v[lat44.odd_sites] = 0
        h = wilson44.apply_hopping(v)
        assert np.abs(h[lat44.even_sites]).max() == 0.0

    def test_diag_preserves_parity(self, wilson44, lat44):
        v = random_spinor(lat44, seed=12)
        v[lat44.odd_sites] = 0
        d = wilson44.apply_diag(v)
        assert np.abs(d[lat44.odd_sites]).max() == 0.0

    def test_diag_inv_is_inverse(self, wilson44, spinor44):
        w = wilson44.apply_diag_inv(wilson44.apply_diag(spinor44))
        np.testing.assert_allclose(w, spinor44, atol=1e-12)

    def test_linearity(self, wilson44, lat44):
        a = random_spinor(lat44, seed=13)
        b = random_spinor(lat44, seed=14)
        lhs = wilson44.apply(2j * a + b)
        rhs = 2j * wilson44.apply(a) + wilson44.apply(b)
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)

    def test_field_interface(self, wilson44, lat44):
        from repro.fields import SpinorField

        f = SpinorField(lat44, random_spinor(lat44, seed=15))
        out = wilson44(f)
        np.testing.assert_allclose(out.data, wilson44.apply(f.data))

    def test_field_shape_mismatch(self, wilson44, lat44):
        from repro.fields import SpinorField

        with pytest.raises(ValueError):
            wilson44(SpinorField.zeros(lat44, ns=2, nc=4))

    def test_hop_gathered_consistency(self, wilson44, lat44, spinor44):
        for mu in range(NDIM):
            nbr = spinor44[lat44.fwd[mu]]
            np.testing.assert_allclose(
                wilson44.apply_hop(mu, +1, spinor44),
                wilson44.apply_hop_gathered(mu, +1, nbr),
            )


class TestSymmetries:
    def test_gamma5_hermiticity(self, wilson448, lat448):
        v = random_spinor(lat448, seed=16)
        w = random_spinor(lat448, seed=17)
        lhs = np.vdot(w.ravel(), g5_apply(wilson448, wilson448.apply(g5_apply(wilson448, v))).ravel())
        rhs = np.conj(np.vdot(v.ravel(), wilson448.apply(w).ravel()))
        assert abs(lhs - rhs) < 1e-9 * abs(lhs)

    def test_gauge_covariance(self, gauge44, lat44):
        g = random_su3(np.random.default_rng(77), lat44.volume)
        v = random_spinor(lat44, seed=18)
        m = WilsonCloverOperator(gauge44, mass=-0.1, c_sw=1.0)
        mg = WilsonCloverOperator(gauge_transform(gauge44, g), mass=-0.1, c_sw=1.0)
        # (M' g v)(x) = g(x) (M v)(x)
        gv = np.einsum("xab,xsb->xsa", g, v)
        lhs = mg.apply(gv)
        rhs = np.einsum("xab,xsb->xsa", g, m.apply(v))
        np.testing.assert_allclose(lhs, rhs, atol=1e-11)

    def test_mass_shifts_diagonal(self, gauge44, spinor44):
        m1 = WilsonCloverOperator(gauge44, mass=0.0)
        m2 = WilsonCloverOperator(gauge44, mass=0.5)
        np.testing.assert_allclose(
            m2.apply(spinor44), m1.apply(spinor44) + 0.5 * spinor44, atol=1e-12
        )

    def test_csw_zero_is_plain_wilson(self, gauge44, spinor44):
        w = WilsonCloverOperator(gauge44, mass=0.1, c_sw=0.0)
        wc = WilsonCloverOperator(gauge44, mass=0.1, c_sw=1.0)
        diff = wc.apply(spinor44) - w.apply(spinor44)
        clover_part = wc.clover.apply(spinor44)
        np.testing.assert_allclose(diff, clover_part, atol=1e-12)


class TestBoundaryConditions:
    def test_antiperiodic_changes_operator(self, gauge44, spinor44):
        a = WilsonCloverOperator(gauge44, mass=0.1, antiperiodic_t=True)
        p = WilsonCloverOperator(gauge44, mass=0.1, antiperiodic_t=False)
        assert np.abs(a.apply(spinor44) - p.apply(spinor44)).max() > 1e-8

    def test_bc_only_affects_time_boundary(self, gauge44, lat44):
        a = WilsonCloverOperator(gauge44, mass=0.1, antiperiodic_t=True)
        p = WilsonCloverOperator(gauge44, mass=0.1, antiperiodic_t=False)
        v = random_spinor(lat44, seed=19)
        diff = np.abs(a.apply(v) - p.apply(v)).sum(axis=(1, 2))
        t = lat44.site_coords[:, 3]
        interior = (t > 0) & (t < lat44.dims[3] - 1)
        assert diff[interior].max() < 1e-13

    def test_antiperiodic_gamma5_hermitian(self, gauge44, lat44):
        m = WilsonCloverOperator(gauge44, mass=0.1, antiperiodic_t=True)
        v = random_spinor(lat44, seed=20)
        w = random_spinor(lat44, seed=21)
        lhs = np.vdot(w.ravel(), g5_apply(m, m.apply(g5_apply(m, v))).ravel())
        rhs = np.conj(np.vdot(v.ravel(), m.apply(w).ravel()))
        assert abs(lhs - rhs) < 1e-9 * abs(lhs)


class TestFlops:
    def test_flop_counts(self, gauge44):
        assert WilsonCloverOperator(gauge44, 0.1, c_sw=1.0).flops_per_site() == 1824.0
        assert WilsonCloverOperator(gauge44, 0.1, c_sw=0.0).flops_per_site() == 1368.0

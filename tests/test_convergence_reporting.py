"""Convergence-history rendering and statistics."""

import numpy as np
import pytest

from repro.reporting.convergence import convergence_rate, render_history, smoothness


class TestSmoothness:
    def test_monotone_is_zero(self):
        assert smoothness([1.0, 0.5, 0.2, 0.1]) == 0.0

    def test_alternating_is_large(self):
        assert smoothness([1.0, 2.0, 1.0, 2.0, 1.0]) == 0.5

    def test_short_history(self):
        assert smoothness([1.0]) == 0.0

    def test_mg_smoother_than_bicgstab(self):
        # the paper's robustness observation, measured near criticality
        # (a well-conditioned system converges smoothly for everyone)
        from repro.dirac import WilsonCloverOperator
        from repro.gauge import disordered_field
        from repro.lattice import Lattice
        from repro.solvers import MRSmoother, bicgstab, gcr
        from tests.conftest import random_spinor

        lat = Lattice((4, 4, 4, 8))
        u = disordered_field(lat, np.random.default_rng(11), 0.55, smear_steps=1)
        op = WilsonCloverOperator(u, mass=-1.406 + 0.02, c_sw=1.0)
        b = random_spinor(lat, seed=30)
        res_bi = bicgstab(op, b, tol=1e-8, maxiter=50000)
        res_gcr = gcr(
            op, b, tol=1e-8, maxiter=5000,
            preconditioner=MRSmoother(op, steps=4),
        )
        assert smoothness(res_gcr.residual_history) == 0.0  # GCR minimizes
        assert smoothness(res_bi.residual_history) > 0.1  # BiCGStab is erratic


class TestRate:
    def test_contraction(self):
        rate = convergence_rate([1.0, 0.1, 0.01])
        assert rate == pytest.approx(0.1)

    def test_degenerate(self):
        assert convergence_rate([1.0]) == 1.0
        assert convergence_rate([0.0, 0.0]) == 1.0


class TestRender:
    def test_contains_markers_and_legend(self):
        out = render_history(
            {"MG": [1.0, 1e-4, 1e-8], "BiCGStab": [1.0, 0.5, 2.0, 1e-8]},
            title="conv",
        )
        assert "conv" in out
        assert "legend" in out
        assert "*" in out and "o" in out

    def test_empty(self):
        assert "no data" in render_history({})

    def test_width_respected(self):
        out = render_history({"s": [1.0, 0.1]}, width=32, height=6)
        rows = [l for l in out.splitlines() if l.startswith("|")]
        assert len(rows) == 6
        assert all(len(r) == 34 for r in rows)

"""GMRES and communication-avoiding GMRES."""

import numpy as np
import pytest

from repro.solvers import ca_gmres, gcr, gmres, norm
from tests.conftest import random_spinor


def true_rel_residual(op, x, b):
    return norm(b - op.apply(x)) / norm(b)


class TestGMRES:
    def test_converges(self, wilson44, lat44):
        b = random_spinor(lat44, seed=300)
        res = gmres(wilson44, b, tol=1e-8, maxiter=2000, restart=20)
        assert res.converged
        assert true_rel_residual(wilson44, res.x, b) < 1e-7

    def test_zero_rhs(self, wilson44, lat44):
        res = gmres(wilson44, np.zeros((lat44.volume, 4, 3), dtype=complex))
        assert res.converged

    def test_initial_guess(self, wilson44, lat44):
        b = random_spinor(lat44, seed=301)
        x0 = gmres(wilson44, b, tol=1e-10, maxiter=2000).x
        warm = gmres(wilson44, b, x0=x0, tol=1e-8, maxiter=30)
        assert warm.converged
        assert warm.iterations <= 3

    def test_reductions_counted(self, wilson44, lat44):
        b = random_spinor(lat44, seed=302)
        res = gmres(wilson44, b, tol=1e-6, maxiter=500)
        # Arnoldi costs O(j) reductions per step: at least 2 per iter
        assert res.extra["reductions"] >= 2 * res.iterations

    def test_restart_still_converges(self, wilson44, lat44):
        b = random_spinor(lat44, seed=303)
        res = gmres(wilson44, b, tol=1e-8, maxiter=3000, restart=5)
        assert res.converged


class TestCAGMRES:
    def test_converges(self, wilson44, lat44):
        b = random_spinor(lat44, seed=304)
        res = ca_gmres(wilson44, b, tol=1e-8, maxiter=3000, s=4)
        assert res.converged
        assert true_rel_residual(wilson44, res.x, b) < 1e-7

    def test_bad_s_rejected(self, wilson44, lat44):
        b = random_spinor(lat44, seed=305)
        with pytest.raises(ValueError):
            ca_gmres(wilson44, b, s=0)

    def test_zero_rhs(self, wilson44, lat44):
        res = ca_gmres(wilson44, np.zeros((lat44.volume, 4, 3), dtype=complex))
        assert res.converged

    def test_fewer_reductions_than_gmres(self, wilson44, lat44):
        # the entire point of the s-step formulation (paper Section 9)
        b = random_spinor(lat44, seed=306)
        res_g = gmres(wilson44, b, tol=1e-8, maxiter=2000)
        res_ca = ca_gmres(wilson44, b, tol=1e-8, maxiter=2000, s=4)
        assert res_ca.converged
        red_per_matvec_g = res_g.extra["reductions"] / res_g.matvecs
        red_per_matvec_ca = res_ca.extra["reductions"] / res_ca.matvecs
        assert red_per_matvec_ca < 0.5 * red_per_matvec_g

    def test_works_on_coarse_operator(self, wilson448, lat448):
        # the intended deployment: the coarsest-grid solve
        from repro.coarse import coarsen_operator
        from repro.lattice import Blocking
        from repro.transfer import Transfer

        t = Transfer(
            Blocking(lat448, (2, 2, 2, 4)),
            [random_spinor(lat448, seed=310 + k) for k in range(4)],
        )
        mc = coarsen_operator(wilson448, t)
        rng = np.random.default_rng(8)
        b = rng.standard_normal((mc.lattice.volume, 2, 4)) + 1j * rng.standard_normal(
            (mc.lattice.volume, 2, 4)
        )
        res = ca_gmres(mc, b, tol=1e-8, maxiter=2000, s=4)
        assert res.converged

    def test_comparable_matvecs_to_gcr(self, wilson44, lat44):
        b = random_spinor(lat44, seed=307)
        res_gcr = gcr(wilson44, b, tol=1e-8, maxiter=2000)
        res_ca = ca_gmres(wilson44, b, tol=1e-8, maxiter=2000, s=4)
        # s-step pays a modest matvec premium for the lost optimality
        assert res_ca.matvecs < 4 * res_gcr.matvecs
